// svc::SessionPool — a multi-tenant session service over one shared world.
//
// The paper's storm problem is many clients hammering one shared metadata
// world at once; the CoW-fork + shared-PathTable + shared dentry-snapshot
// architecture (PRs 2-5) already gives every client an O(1) private view of
// that world. SessionPool finishes the server: it owns one immutable base
// core::Session and admits thousands of concurrent clients, each lazily
// acquiring a copy-on-write fork of the base on first request. Requests are
// typed commands (Load, LoadMany, Whatif, Shrinkwrap, LaunchFleet, Query)
// pushed into a sharded admission queue — N shards hashed by client id —
// and each shard is drained as a strand on one shared support::ThreadPool:
// at most one drain task per shard is ever in flight, so every client's
// commands execute in submission order on its own fork, with no lock held
// during execution (the nebula threaded-command-buffer idiom: worker
// threads draining typed command queues, batched per drain cycle).
//
// Concurrency contract (see the vfs.hpp "Thread safety" audit):
//  * Every client executes exclusively on ITS fork — a vfs view is never
//    shared between threads. Shard strand-exclusivity enforces this.
//  * Fork acquisition from the base is WAIT-FREE: the constructor seal()s
//    the base (freeze the overlay, rotate the dentry snapshot, seal
//    writable mount backings — exactly the old priming fork's side
//    effects, done once), after which Session::fork_sealed() is a const
//    stamp any number of strands may run concurrently with no lock. A
//    pool-wide fork mutex survives only as the fallback for the
//    never-expected case of an unsealed base; PoolStats counts how many
//    admissions took each path.
//  * The shared substrate read concurrently by every client — frozen CoW
//    layers, read-only mount backings, the fork-family PathTable, the
//    shared dentry snapshot — is immutable or internally synchronized.
//
// Shared-world request dedup: on a PRISTINE fork (no mutating request
// executed yet) a Load's report is a pure function of (exe, environment) —
// the PR-3 dentry cache and the parsed-object caches are counter-
// transparent, so warmth never shows in a report. The pool therefore
// memoizes Load reports across pristine clients (the Spindle insight:
// identical metadata requests from a fleet are served once). The memo is
// bucket-sharded by key hash and its hit path is a shared-mutex read, so
// under fleet traffic (hits are the common case) thousands of concurrent
// Loads no longer serialize on one mutex.
//
// Memoization under latency models: per-view cache warmth (NfsModel's
// attribute cache) shows up in sim_time_s, so a memoized report cannot be
// handed out verbatim when the base carries a LatencyModel. Instead of
// disabling the memo (the old behaviour), the miss run records the exact
// charge log — (op, hit, shared-vs-node-local route, path) for every
// latency-charged operation — alongside the warmth-INDEPENDENT report
// fields. A memo hit then replays that log through the hitting client's
// own latency models: sim_time_s comes out exactly as if the client had
// executed the load (including warming its attribute cache for subsequent
// requests), while the resolution work is still done once fleet-wide.
// Model-free pools keep the zero-copy shared-report fast path.
//
// Backpressure: each shard's queue is bounded; past the high-water mark
// submits fail fast with svc::Overloaded carrying a retry-after hint
// derived from the shard's recent per-command service time. Release/reset
// commands bypass the bound so an overloaded pool can still shed state.
//
// Fork lifecycle: forks are acquired on first request, reset() re-forks
// from the base, release() drops the client. An idle sweep runs every
// drain cycle: pristine forks idle past `idle_evict_cycles` are evicted
// (re-acquired O(1) on the next request); mutated idle forks are instead
// flattened once via FileSystem::collapse() — they stop pinning the fork
// family's frozen generations and their lookups go flat — but keep their
// divergence (a shrinkwrapped world must survive its owner's coffee
// break).
//
//   svc::SessionPool pool(core::WorldBuilder().debian().build());
//   auto f = pool.submit_load(client_id, "/usr/bin/bin7");
//   loader::LoadReport r = f.get();          // throws what the verb threw
//   svc::PoolStats s = pool.stats();         // depths, p50/p99, evictions
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "depchaos/core/session.hpp"
#include "depchaos/support/error.hpp"
#include "depchaos/support/thread_pool.hpp"

namespace depchaos::svc {

/// Caller-chosen client identity; requests with one id execute in
/// submission order on that client's private fork.
using ClientId = std::uint64_t;

/// The typed command set a pool serves (indexes PoolStats::latency).
enum class RequestKind : std::uint8_t {
  Load,
  LoadMany,
  Whatif,
  Shrinkwrap,
  LaunchFleet,
  Query,
  Control,  // release / reset
};
inline constexpr std::size_t kRequestKinds = 7;
std::string_view request_kind_name(RequestKind kind);

/// Thrown synchronously by submit_* when the client's shard queue is past
/// the high-water mark. `retry_after_s` estimates when the backlog will
/// have drained (queue depth x recent per-command service time).
class Overloaded : public Error {
 public:
  Overloaded(std::size_t shard, std::size_t queue_depth, double retry_after_s);
  std::size_t shard() const { return shard_; }
  std::size_t queue_depth() const { return queue_depth_; }
  double retry_after_s() const { return retry_after_s_; }

 private:
  std::size_t shard_;
  std::size_t queue_depth_;
  double retry_after_s_;
};

struct PoolConfig {
  /// Admission shards (hashed by client id). More shards = finer-grained
  /// drains and less head-of-line blocking between client groups.
  std::size_t shards = 4;
  /// Shared worker pool size (0 = hardware concurrency).
  std::size_t threads = 0;
  /// Per-shard pending-command bound; submits past it throw Overloaded.
  std::size_t queue_high_water = 1024;
  /// Idle sweep: a fork untouched for this many of its shard's drain
  /// cycles is evicted (pristine) or collapsed (mutated). 0 = never.
  std::uint64_t idle_evict_cycles = 1024;
  /// Dedup identical Load requests across pristine forks. Stays on when
  /// the base carries a latency model: hits re-price sim_time_s through
  /// the client's own models (see the header comment).
  bool memoize_loads = true;
  /// Per-client fairness: at most this many commands per client per drain
  /// cycle (deficit round-robin over the swapped batch); a chatty client's
  /// surplus is requeued at the FRONT of the shard queue — still ahead of
  /// newer arrivals, still FIFO within the client — so one client can no
  /// longer monopolize a whole cycle and quiet tenants' tail latency is
  /// bounded by (budget x clients) commands. 0 = unlimited (plain FIFO).
  std::size_t client_budget_per_cycle = 0;
  /// Tests and scripted drivers: no worker drains are scheduled; queues
  /// advance only when pump() is called, making backpressure and idle
  /// eviction deterministic.
  bool manual_drain = false;
  /// Test-only fault injection: invoked right before each worker-pool
  /// drain submission; throwing simulates a submit failure (pool shutting
  /// down). Admission must stay exception-safe: the command is rejected,
  /// pending_ is given back, and drain() still quiesces — the regression
  /// gate for the pending_-leak bug.
  std::function<void()> drain_submit_fault;
};

/// Answer to a Query request: facts about the client's view of the world.
struct QueryResult {
  std::size_t inode_count = 0;     // composed namespace size
  std::size_t layer_depth = 0;     // CoW chain under the client's fork
  std::uint64_t owned_bytes = 0;   // the fork's private divergence
  std::size_t interned_paths = 0;  // fork-family shared PathTable size
  std::size_t mount_count = 0;
  std::string default_exe;
  bool pristine = true;  // no mutating request executed on this fork
};

struct OpLatency {
  std::uint64_t count = 0;
  double p50_us = 0;
  double p99_us = 0;
  double max_us = 0;
};

/// One consistent snapshot of the pool's health (the service dashboard).
struct PoolStats {
  std::size_t shards = 0;
  std::vector<std::size_t> queue_depths;  // pending commands, per shard
  std::size_t clients_live = 0;           // clients holding a fork
  std::uint64_t admitted = 0;             // commands accepted
  std::uint64_t executed = 0;             // commands completed
  std::uint64_t memoized = 0;             // Loads served from the dedup memo
  std::uint64_t rejected = 0;             // Overloaded submits
  std::uint64_t evicted = 0;              // idle pristine forks dropped
  std::uint64_t collapsed = 0;            // idle mutated forks flattened
  std::uint64_t drain_cycles = 0;
  /// Most distinct clients ever served within one drain cycle (any shard):
  /// the fairness dashboard number — under a per-client budget it grows
  /// with the number of interleaved tenants instead of pinning at 1 while
  /// one chatty client monopolizes a cycle.
  std::size_t max_clients_per_cycle = 0;
  std::uint64_t worker_errors = 0;  // exceptions forwarded to futures
  std::uint64_t fork_owned_bytes = 0;  // Σ owned_bytes over live forks
  /// End-to-end (enqueue -> result ready) latency per request kind.
  std::array<OpLatency, kRequestKinds> latency{};

  // ---- contention observability -------------------------------------------
  /// Fork admission paths: wait-free = Session::fork_sealed with no lock
  /// (the expected path — the base is sealed at construction); locked =
  /// the fork-mutex fallback. locked > 0 means the base lost its seal.
  std::uint64_t forks_wait_free = 0;
  std::uint64_t forks_locked = 0;
  /// Load-memo traffic per memo shard (hit path is a shared-lock read).
  /// memo_hits == `memoized`'s memo-served count; misses ran a resolution.
  std::vector<std::uint64_t> memo_shard_hits;
  std::vector<std::uint64_t> memo_shard_misses;
  std::uint64_t memo_hits = 0;    // Σ memo_shard_hits
  std::uint64_t memo_misses = 0;  // Σ memo_shard_misses
  /// Commands per drain-cycle batch (how much batching the strands get).
  struct BatchStats {
    std::uint64_t cycles = 0;  // batches recorded
    double p50 = 0;
    double p99 = 0;
    std::uint64_t max = 0;
  };
  BatchStats drain_batch;
  /// Worker pool: size and cross-lane steals (support::ThreadPool) — a
  /// high steal rate means drain tasks land unevenly across worker lanes.
  std::size_t pool_threads = 0;
  std::uint64_t pool_steals = 0;
};

class SessionPool {
 public:
  /// Take ownership of the base world. The base is seal()ed up front
  /// (observably identical to the old priming fork) so every admission is
  /// an O(1) LOCK-FREE fork_sealed() stamp and the base session is never
  /// structurally mutated again.
  explicit SessionPool(core::Session base, PoolConfig config = {});
  ~SessionPool();

  SessionPool(const SessionPool&) = delete;
  SessionPool& operator=(const SessionPool&) = delete;

  // ---- typed submission (thread-safe; throws Overloaded on backpressure) --
  std::future<loader::LoadReport> submit_load(ClientId client,
                                              std::string exe = {});
  /// Zero-copy variant for storm fleets: when the Load memo serves N
  /// clients the same (exe, env) resolution, they all receive ONE shared
  /// immutable report instead of N deep copies (the pull-based broadcast
  /// idea: identical responses to a fleet are one payload). Byte-identical
  /// to submit_load in every field.
  std::future<std::shared_ptr<const loader::LoadReport>> submit_load_shared(
      ClientId client, std::string exe = {});
  std::future<std::vector<loader::LoadReport>> submit_load_many(
      ClientId client, std::vector<std::string> exes);
  std::future<core::Session::WhatIfReport> submit_whatif(ClientId client,
                                                         std::string exe = {});
  std::future<shrinkwrap::WrapReport> submit_shrinkwrap(ClientId client,
                                                        std::string exe = {});
  std::future<launch::LaunchResult> submit_launch_fleet(ClientId client,
                                                        core::SandboxSpec spec,
                                                        std::string exe,
                                                        int ranks);
  /// Heterogeneous-fleet variant: the FleetConfig (rank_setup hook,
  /// cluster_ranks, engine/prestage knobs) rides along with the command,
  /// so pooled tenants get the same O(#classes) fingerprint-clustered
  /// measurement as direct Session::launch_fleet callers. The hook runs on
  /// the client's strand inside per-rank sandbox forks of the client's own
  /// view — never on a shared structure.
  std::future<launch::LaunchResult> submit_launch_fleet(
      ClientId client, core::SandboxSpec spec, std::string exe, int ranks,
      launch::FleetConfig fleet);
  std::future<QueryResult> submit_query(ClientId client);

  // ---- fork lifecycle (bypass the high-water mark: they shed state) -------
  /// Drop the client's fork and queue position; the next request re-admits.
  std::future<void> release(ClientId client);
  /// Replace the client's fork with a fresh pristine fork of the base.
  std::future<void> reset(ClientId client);

  // ---- control ------------------------------------------------------------
  /// Block until every admitted command has completed (quiescence).
  void drain();
  /// Run one drain cycle per shard on the calling thread (the only way
  /// queues advance under PoolConfig::manual_drain; safe — but rarely
  /// useful — alongside worker drains otherwise). Returns commands run.
  std::size_t pump();

  PoolStats stats() const;
  /// Which shard serves this client (submission-order domain).
  std::size_t shard_of(ClientId client) const;
  /// Whether Load dedup is active. Under a latency model the memo stays
  /// on and hits re-price sim_time_s per client (repricing_active()).
  bool memoization_enabled() const { return memo_enabled_; }
  /// True when memo hits replay the recorded charge log through the
  /// client's own latency models (base carries a LatencyModel).
  bool repricing_active() const { return reprice_; }
  /// The shared base. Const access is safe while the pool is quiescent
  /// (ctor, or after drain() with no concurrent submits): admissions
  /// serialize on an internal mutex but are not readers-safe against it.
  const core::Session& base() const { return base_; }

 private:
  struct Shard;
  struct ClientState;
  struct Command;
  struct MemoShard;

  Shard& shard_for(ClientId client);
  MemoShard& memo_shard_for(const std::string& key);
  void schedule_drain(Shard& shard);     // under shard.mutex
  std::size_t drain_cycle(Shard& shard);  // strand body; returns commands run
  void enqueue(ClientId client, RequestKind kind, Command command);
  void execute(Shard& shard, Command& command);
  void sweep_idle(Shard& shard);
  void finish(Shard& shard, RequestKind kind, bool error, bool memo_hit,
              double wait_s, double service_s);

  PoolConfig config_;
  core::Session base_;
  bool memo_enabled_ = false;
  bool reprice_ = false;  // base carries a latency model: re-price hits

  /// Fallback only: admissions are lock-free via fork_sealed() while the
  /// base stays sealed (always, absent outside mutation of base()).
  std::mutex fork_mutex_;
  std::atomic<std::uint64_t> forks_wait_free_{0};
  std::atomic<std::uint64_t> forks_locked_{0};

  /// Load memo, bucket-sharded by key hash; hit path takes the shard's
  /// shared lock only.
  static constexpr std::size_t kMemoShards = 16;
  std::vector<std::unique_ptr<MemoShard>> memo_shards_;

  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<std::size_t> pending_{0};
  std::mutex quiesce_mutex_;
  std::condition_variable quiesce_cv_;

  // Last member: destroyed (joined) first, so no drain task can touch the
  // shards or the base during teardown.
  std::unique_ptr<support::ThreadPool> pool_;
};

}  // namespace depchaos::svc
