#include "depchaos/loader/loader.hpp"

#include <algorithm>
#include <cassert>
#include <deque>

#include "depchaos/support/strings.hpp"

namespace depchaos::loader {

namespace {

vfs::SyscallStats stats_delta(const vfs::SyscallStats& before,
                              const vfs::SyscallStats& after) {
  vfs::SyscallStats delta;
  delta.stat_calls = after.stat_calls - before.stat_calls;
  delta.open_calls = after.open_calls - before.open_calls;
  delta.read_calls = after.read_calls - before.read_calls;
  delta.readlink_calls = after.readlink_calls - before.readlink_calls;
  delta.failed_probes = after.failed_probes - before.failed_probes;
  delta.sim_time_s = after.sim_time_s - before.sim_time_s;
  return delta;
}

}  // namespace

std::string_view how_found_name(HowFound how) {
  switch (how) {
    case HowFound::Root:
      return "root";
    case HowFound::AbsolutePath:
      return "absolute path";
    case HowFound::Cache:
      return "already loaded";
    case HowFound::Preload:
      return "LD_PRELOAD";
    case HowFound::AppCache:
      return "app loader cache";
    case HowFound::Rpath:
      return "rpath";
    case HowFound::RpathAncestor:
      return "rpath (inherited)";
    case HowFound::LdLibraryPath:
      return "LD_LIBRARY_PATH";
    case HowFound::Runpath:
      return "runpath";
    case HowFound::LdSoConf:
      return "ld.so.conf";
    case HowFound::DefaultPath:
      return "default path";
    case HowFound::NotFound:
      return "not found";
  }
  return "?";
}

const LoadedObject* LoadReport::find_loaded(
    std::string_view path_or_soname) const {
  for (const auto& obj : load_order) {
    if (obj.path == path_or_soname || obj.name == path_or_soname ||
        obj.real_path == path_or_soname) {
      return &obj;
    }
    if (obj.object && obj.object->dyn.soname == path_or_soname) return &obj;
  }
  return nullptr;
}

Loader::Loader(vfs::FileSystem& fs, SearchConfig config, Dialect dialect)
    : Loader(fs, std::move(config), SearchPolicy::shared(dialect)) {}

Loader::Loader(vfs::FileSystem& fs, SearchConfig config,
               std::shared_ptr<const SearchPolicy> policy)
    : fs_(fs),
      config_(std::move(config)),
      policy_(std::move(policy)),
      dialect_(SearchPolicy::dialect_of(*policy_)) {}

void Loader::invalidate() {
  cache_.clear();
  ld_cache_.clear();
  ld_cache_built_ = false;
}

void Loader::adopt_caches(const Loader& other) {
  cache_ = other.cache_;
  ld_cache_ = other.ld_cache_;
  ld_cache_built_ = other.ld_cache_built_;
}

std::string Loader::expand_origin(std::string_view entry,
                                  std::string_view object_path) {
  if (entry.find("$ORIGIN") == std::string_view::npos &&
      entry.find("${ORIGIN}") == std::string_view::npos) {
    return std::string(entry);
  }
  const std::string origin = vfs::dirname(object_path);
  std::string out = support::replace_all(entry, "${ORIGIN}", origin);
  out = support::replace_all(out, "$ORIGIN", origin);
  return out;
}

std::shared_ptr<const elf::Object> Loader::fetch_object(
    const std::string& path, bool count_read) {
  const auto canonical = fs_.realpath(path);
  const std::string key = canonical.value_or(path);
  if (const auto it = cache_.find(key); it != cache_.end()) {
    if (count_read) fs_.count_read(path);
    return it->second;
  }
  const vfs::FileData* data = fs_.peek(path);
  if (data == nullptr) return nullptr;
  if (!elf::looks_like_self(data->bytes)) return nullptr;
  auto object = std::make_shared<const elf::Object>(elf::parse(data->bytes));
  cache_.emplace(key, object);
  if (count_read) fs_.count_read(path);
  return object;
}

bool Loader::probe_file(const std::string& path, elf::Machine machine) {
  const vfs::FileData* data = fs_.open(path);  // counted probe
  if (data == nullptr) {
    if (probe_log_) probe_log_->push_back("trying " + path + " ... ENOENT");
    return false;
  }
  if (!elf::looks_like_self(data->bytes)) {
    if (probe_log_) {
      probe_log_->push_back("trying " + path + " ... not an object, skipped");
    }
    return false;
  }
  // The System V rule the paper leans on (§IV): a candidate whose
  // architecture does not match is silently ignored and the search goes on.
  elf::Object header = elf::parse(data->bytes);
  if (header.machine != machine) {
    if (probe_log_) {
      probe_log_->push_back("trying " + path +
                            " ... wrong architecture, skipped");
    }
    return false;
  }
  if (probe_log_) probe_log_->push_back("trying " + path + " ... found");
  return true;
}

bool Loader::try_candidate(const std::string& dir, const std::string& name,
                           elf::Machine machine, std::string& out_path) {
  if (dir.empty() || dir.front() != '/') {
    // Relative search dirs (a historic security hole) resolve against /;
    // keep them functional but unremarkable.
    return try_candidate("/" + dir, name, machine, out_path);
  }
  if (policy_->probes_hwcaps()) {
    for (const auto& hwcap : config_.hwcaps) {
      const std::string candidate =
          vfs::normalize_path(dir + "/" + hwcap + "/" + name);
      if (probe_file(candidate, machine)) {
        out_path = candidate;
        return true;
      }
    }
  }
  const std::string candidate = vfs::normalize_path(dir + "/" + name);
  if (probe_file(candidate, machine)) {
    out_path = candidate;
    return true;
  }
  return false;
}

void Loader::ensure_ld_cache() {
  if (ld_cache_built_) return;
  ld_cache_built_ = true;
  ld_cache_.clear();
  auto scan = [&](const std::vector<std::string>& dirs, HowFound how) {
    for (const auto& dir : dirs) {
      if (!fs_.exists(dir)) continue;
      for (const auto& name : fs_.list_dir(dir)) {
        const std::string path = dir + "/" + name;
        if (!ld_cache_.contains(name)) {
          ld_cache_.emplace(name, Resolution{path, how});
        }
      }
    }
  };
  scan(config_.ld_so_conf, HowFound::LdSoConf);
  scan(config_.default_paths, HowFound::DefaultPath);
}

std::vector<std::string> Loader::effective_rpath_chain(
    const Session& session, std::size_t requester_index,
    std::size_t& own_count) const {
  // Non-melding (glibc, Table I): DT_RPATH of the requester, then of each
  // ancestor up to the executable. Any object carrying DT_RUNPATH
  // contributes nothing from its DT_RPATH, and a requester with DT_RUNPATH
  // disables the whole chain. Melding (musl, §IV): RPATH and RUNPATH of
  // every link in the ancestry, both propagated.
  const bool meld = policy_->melds_rpath_runpath();
  std::vector<std::string> dirs;
  own_count = 0;
  const auto& order = session.report.load_order;
  const LoadedObject& requester = order[requester_index];
  if (!requester.object) return dirs;
  if (!meld && !requester.object->dyn.runpath.empty()) {
    return dirs;  // DT_RUNPATH present: RPATH protocol disabled
  }
  std::int64_t index = static_cast<std::int64_t>(requester_index);
  bool first = true;
  while (index >= 0) {
    const LoadedObject& node = order[static_cast<std::size_t>(index)];
    if (node.object) {
      const bool has_runpath = !node.object->dyn.runpath.empty();
      if (meld || !has_runpath) {
        for (const auto& dir : node.object->dyn.rpath) {
          dirs.push_back(expand_origin(dir, node.path));
          if (first) ++own_count;
        }
      }
      if (meld) {
        for (const auto& dir : node.object->dyn.runpath) {
          dirs.push_back(expand_origin(dir, node.path));
          if (first) ++own_count;
        }
      }
    }
    first = false;
    index = node.parent_index;
  }
  return dirs;
}

std::optional<std::size_t> Loader::dedup_lookup(Session& session,
                                                const std::string& name) const {
  if (const auto it = session.by_name.find(name); it != session.by_name.end()) {
    return it->second;
  }
  if (policy_->dedups_by_soname()) {
    // glibc also satisfies requests from the DT_SONAME of anything already
    // loaded — the dedup Shrinkwrap exploits (Fig 5). Musl does not (§IV).
    if (const auto it = session.by_soname.find(name);
        it != session.by_soname.end()) {
      return it->second;
    }
  }
  return std::nullopt;
}

Loader::Resolution Loader::search(Session& session, const std::string& name,
                                  std::size_t requester_index) {
  const auto& order = session.report.load_order;
  const LoadedObject& requester = order[requester_index];
  const elf::Machine machine =
      order[0].object ? order[0].object->machine : elf::Machine::X86_64;

  // Needed entries containing '/' are used as-is (after DST expansion).
  if (name.find('/') != std::string::npos) {
    std::string path = expand_origin(name, requester.path);
    if (!path.empty() && path.front() == '/') {
      path = vfs::normalize_path(path);
    }
    if (probe_file(path, machine)) {
      return Resolution{path, HowFound::AbsolutePath};
    }
    return Resolution{{}, HowFound::NotFound};
  }

  // Per-application loader cache: consulted before any directory search.
  if (const auto it = session.app_cache.find(name);
      it != session.app_cache.end()) {
    if (probe_file(it->second, machine)) {
      return Resolution{it->second, HowFound::AppCache};
    }
    // Stale cache entry: fall through to the normal search.
  }

  // Run the policy's phases in dialect order, e.g. glibc (Table I): RPATH
  // chain, LD_LIBRARY_PATH, RUNPATH, ld.so.cache, defaults; musl (§IV):
  // LD_LIBRARY_PATH, melded inherited chain, system dirs.
  for (const SearchPhase phase : policy_->phases()) {
    Resolution res = search_phase(phase, session, name, requester_index,
                                  machine);
    if (res.how != HowFound::NotFound) return res;
  }
  return Resolution{{}, HowFound::NotFound};
}

Loader::Resolution Loader::search_phase(SearchPhase phase, Session& session,
                                        const std::string& name,
                                        std::size_t requester_index,
                                        elf::Machine machine) {
  const LoadedObject& requester =
      session.report.load_order[requester_index];
  std::string found;
  switch (phase) {
    case SearchPhase::RpathChain: {
      std::size_t own = 0;
      const auto chain = effective_rpath_chain(session, requester_index, own);
      for (std::size_t i = 0; i < chain.size(); ++i) {
        if (try_candidate(chain[i], name, machine, found)) {
          // Melding dialects historically label only the first own entry as
          // the requester's rpath (musl has no RPATH/RUNPATH distinction to
          // report); non-melding labels every own DT_RPATH entry.
          const bool own_hit = policy_->melds_rpath_runpath()
                                   ? (i == 0 && own > 0)
                                   : (i < own);
          return Resolution{found, own_hit ? HowFound::Rpath
                                           : HowFound::RpathAncestor};
        }
      }
      return Resolution{{}, HowFound::NotFound};
    }
    case SearchPhase::LdLibraryPath: {
      for (const auto& dir : session.env->ld_library_path) {
        if (try_candidate(dir, name, machine, found)) {
          return Resolution{found, HowFound::LdLibraryPath};
        }
      }
      return Resolution{{}, HowFound::NotFound};
    }
    case SearchPhase::Runpath: {
      if (!requester.object) return Resolution{{}, HowFound::NotFound};
      for (const auto& dir : requester.object->dyn.runpath) {
        if (try_candidate(expand_origin(dir, requester.path), name, machine,
                          found)) {
          return Resolution{found, HowFound::Runpath};
        }
      }
      return Resolution{{}, HowFound::NotFound};
    }
    case SearchPhase::SystemPaths: {
      if (policy_->uses_ld_cache() && config_.use_ld_cache) {
        ensure_ld_cache();
        if (const auto it = ld_cache_.find(name); it != ld_cache_.end()) {
          // The cache told us where to look; the loader still open()s it.
          if (probe_file(it->second.path, machine)) {
            return it->second;
          }
        }
        return Resolution{{}, HowFound::NotFound};
      }
      for (const auto& dir : config_.ld_so_conf) {
        if (try_candidate(dir, name, machine, found)) {
          return Resolution{found, HowFound::LdSoConf};
        }
      }
      for (const auto& dir : config_.default_paths) {
        if (try_candidate(dir, name, machine, found)) {
          return Resolution{found, HowFound::DefaultPath};
        }
      }
      return Resolution{{}, HowFound::NotFound};
    }
  }
  return Resolution{{}, HowFound::NotFound};
}

std::size_t Loader::register_object(Session& session, LoadedObject loaded) {
  auto& order = session.report.load_order;
  const std::size_t index = order.size();
  // Dedup keys. Musl never dedups by soname (§IV); both dedup by the
  // requested string and by canonical path (the inode proxy).
  session.by_name.emplace(loaded.name, index);
  if (!loaded.real_path.empty()) {
    session.by_realpath.emplace(loaded.real_path, index);
  }
  if (loaded.object && !loaded.object->dyn.soname.empty() &&
      policy_->dedups_by_soname()) {
    session.by_soname.emplace(loaded.object->dyn.soname, index);
  }
  order.push_back(std::move(loaded));
  return index;
}

LoadReport Loader::load(const std::string& exe_path, const Environment& env) {
  Session session;
  session.env = &env;
  session.report.success = true;
  probe_log_ = config_.record_probes ? &session.report.probe_log : nullptr;
  const vfs::SyscallStats before = fs_.stats();

  // Open + read the executable itself (execve's work).
  const vfs::FileData* exe_data = fs_.open(exe_path);
  if (exe_data == nullptr) {
    throw FsError("cannot execute: " + exe_path);
  }
  auto exe_object = fetch_object(exe_path, /*count_read=*/true);
  if (!exe_object) {
    throw ElfError("not a SELF executable: " + exe_path);
  }
  // Read the per-application loader cache, if enabled and present. The
  // loader pays one open() for the cache file itself.
  if (config_.use_app_cache) {
    const std::string cache_path = exe_path + config_.app_cache_suffix;
    if (const vfs::FileData* cache = fs_.open(cache_path)) {
      for (const auto& line : support::split(cache->bytes, '\n')) {
        const auto space = line.find(' ');
        if (space == std::string::npos) continue;
        session.app_cache.emplace(line.substr(0, space),
                                  line.substr(space + 1));
      }
    }
  }

  LoadedObject root;
  root.name = exe_path;
  root.path = exe_path;
  root.real_path = fs_.realpath(exe_path).value_or(exe_path);
  root.how = HowFound::Root;
  root.depth = 0;
  root.parent_index = -1;
  root.object = exe_object;
  register_object(session, std::move(root));

  std::deque<WorkItem> queue;

  // LD_PRELOAD objects load before anything from the needed lists and are
  // searched with the executable as the requester.
  for (const auto& preload : env.ld_preload) {
    Resolution res;
    if (preload.find('/') != std::string::npos) {
      res = probe_file(preload, exe_object->machine)
                ? Resolution{preload, HowFound::Preload}
                : Resolution{{}, HowFound::NotFound};
    } else {
      res = search(session, preload, 0);
      if (res.how != HowFound::NotFound) res.how = HowFound::Preload;
    }
    LoadedObject loaded;
    loaded.name = preload;
    loaded.requested_by = "LD_PRELOAD";
    loaded.depth = 1;
    loaded.parent_index = 0;
    loaded.how = res.how;
    if (res.how == HowFound::NotFound) {
      session.report.requests.push_back(loaded);
      session.report.missing.push_back(loaded);
      // glibc warns but continues on missing preloads.
      continue;
    }
    loaded.path = res.path;
    loaded.real_path = fs_.realpath(res.path).value_or(res.path);
    loaded.object = fetch_object(res.path, /*count_read=*/true);
    session.report.requests.push_back(loaded);
    register_object(session, std::move(loaded));
  }

  // Initial BFS scope: the executable's needed entries, then each
  // preload's, exactly the order ld.so seeds its link-map search list.
  for (std::size_t i = 0; i < session.report.load_order.size(); ++i) {
    enqueue_needed_deque(session, i, queue);
  }

  while (!queue.empty()) {
    const WorkItem item = std::move(queue.front());
    queue.pop_front();
    process_request(session, item, queue);
  }

  session.report.stats = stats_delta(before, fs_.stats());
  probe_log_ = nullptr;
  return session.report;
}

void Loader::process_request(Session& session, const WorkItem& item,
                             std::deque<WorkItem>& queue) {
  const LoadedObject& requester = session.report.load_order[item.requester_index];

  LoadedObject request;
  request.name = item.name;
  request.requested_by = requester.path;
  request.depth = requester.depth + 1;
  request.parent_index = static_cast<std::int64_t>(item.requester_index);

  // Dedup by name/soname before touching the filesystem.
  if (const auto hit = dedup_lookup(session, item.name)) {
    const LoadedObject& original = session.report.load_order[*hit];
    request.path = original.path;
    request.real_path = original.real_path;
    request.how = HowFound::Cache;
    request.object = original.object;
    if (config_.classify_cache_hits) {
      // What would a pure search from this requester have found? Probe
      // uncounted (and unlogged) so the measured workload is unchanged.
      fs_.set_counting(false);
      std::vector<std::string>* saved_log = probe_log_;
      probe_log_ = nullptr;
      const Resolution shadow = search(session, item.name, item.requester_index);
      probe_log_ = saved_log;
      fs_.set_counting(true);
      request.cache_search_how = shadow.how;
    }
    session.report.requests.push_back(std::move(request));
    return;
  }

  Resolution res = search(session, item.name, item.requester_index);
  if (res.how == HowFound::NotFound) {
    request.how = HowFound::NotFound;
    session.report.requests.push_back(request);
    session.report.missing.push_back(std::move(request));
    session.report.success = false;
    return;
  }

  request.path = res.path;
  request.real_path = fs_.realpath(res.path).value_or(res.path);

  // Post-resolution inode dedup (both dialects; this is how musl avoids
  // double-loading a file reached via two different strings).
  if (const auto it = session.by_realpath.find(request.real_path);
      it != session.by_realpath.end()) {
    const LoadedObject& original = session.report.load_order[it->second];
    request.how = HowFound::Cache;
    request.object = original.object;
    // Record the requested name as now-known (glibc adds it to l_libname).
    session.by_name.emplace(item.name, it->second);
    session.report.requests.push_back(std::move(request));
    return;
  }

  request.how = res.how;
  request.object = fetch_object(res.path, /*count_read=*/true);
  assert(request.object && "probe succeeded but fetch failed");
  session.report.requests.push_back(request);
  const std::size_t index = register_object(session, std::move(request));
  enqueue_needed_deque(session, index, queue);
}

void Loader::enqueue_needed_deque(Session& session, std::size_t index,
                                  std::deque<WorkItem>& queue) {
  const auto& obj = session.report.load_order[index];
  if (!obj.object) return;
  for (const auto& entry : obj.object->dyn.needed) {
    queue.push_back(WorkItem{entry, index});
  }
}

LoadedObject Loader::dlopen(LoadReport& report, const std::string& caller_path,
                            const std::string& name, const Environment& env) {
  // Rebuild session state from the existing report.
  Session session;
  session.env = &env;
  session.report = std::move(report);
  for (std::size_t i = 0; i < session.report.load_order.size(); ++i) {
    const auto& obj = session.report.load_order[i];
    session.by_name.emplace(obj.name, i);
    if (!obj.real_path.empty()) session.by_realpath.emplace(obj.real_path, i);
    if (policy_->dedups_by_soname() && obj.object &&
        !obj.object->dyn.soname.empty()) {
      session.by_soname.emplace(obj.object->dyn.soname, i);
    }
  }
  std::size_t caller_index = 0;
  bool caller_found = false;
  for (std::size_t i = 0; i < session.report.load_order.size(); ++i) {
    const auto& obj = session.report.load_order[i];
    if (obj.path == caller_path || obj.real_path == caller_path) {
      caller_index = i;
      caller_found = true;
      break;
    }
  }
  if (!caller_found) {
    report = std::move(session.report);
    throw Error("dlopen caller not loaded: " + caller_path);
  }

  const vfs::SyscallStats before = fs_.stats();
  std::deque<WorkItem> queue;
  queue.push_back(WorkItem{name, caller_index});
  const std::size_t first_request = session.report.requests.size();
  while (!queue.empty()) {
    const WorkItem item = std::move(queue.front());
    queue.pop_front();
    process_request(session, item, queue);
  }
  auto delta = stats_delta(before, fs_.stats());
  session.report.stats += delta;

  LoadedObject result = session.report.requests[first_request];
  report = std::move(session.report);
  return result;
}

}  // namespace depchaos::loader
