#include "depchaos/loader/loader.hpp"

#include <algorithm>
#include <cassert>
#include <deque>

#include "depchaos/support/strings.hpp"

namespace depchaos::loader {

namespace {

vfs::SyscallStats stats_delta(const vfs::SyscallStats& before,
                              const vfs::SyscallStats& after) {
  vfs::SyscallStats delta;
  delta.stat_calls = after.stat_calls - before.stat_calls;
  delta.open_calls = after.open_calls - before.open_calls;
  delta.read_calls = after.read_calls - before.read_calls;
  delta.readlink_calls = after.readlink_calls - before.readlink_calls;
  delta.failed_probes = after.failed_probes - before.failed_probes;
  delta.sim_time_s = after.sim_time_s - before.sim_time_s;
  return delta;
}

}  // namespace

std::string_view how_found_name(HowFound how) {
  switch (how) {
    case HowFound::Root:
      return "root";
    case HowFound::AbsolutePath:
      return "absolute path";
    case HowFound::Cache:
      return "already loaded";
    case HowFound::Preload:
      return "LD_PRELOAD";
    case HowFound::AppCache:
      return "app loader cache";
    case HowFound::Rpath:
      return "rpath";
    case HowFound::RpathAncestor:
      return "rpath (inherited)";
    case HowFound::LdLibraryPath:
      return "LD_LIBRARY_PATH";
    case HowFound::Runpath:
      return "runpath";
    case HowFound::LdSoConf:
      return "ld.so.conf";
    case HowFound::DefaultPath:
      return "default path";
    case HowFound::NotFound:
      return "not found";
  }
  return "?";
}

const LoadedObject* LoadReport::find_loaded(
    std::string_view path_or_soname) const {
  for (const auto& obj : load_order) {
    if (obj.path == path_or_soname || obj.name == path_or_soname ||
        obj.real_path == path_or_soname) {
      return &obj;
    }
    if (obj.object && obj.object->dyn.soname == path_or_soname) return &obj;
  }
  return nullptr;
}

Loader::Loader(vfs::FileSystem& fs, SearchConfig config, Dialect dialect)
    : Loader(fs, std::move(config), SearchPolicy::shared(dialect)) {}

Loader::Loader(vfs::FileSystem& fs, SearchConfig config,
               std::shared_ptr<const SearchPolicy> policy)
    : fs_(fs),
      paths_(fs.path_table()),
      config_(std::move(config)),
      policy_(std::move(policy)),
      dialect_(SearchPolicy::dialect_of(*policy_)) {}

void Loader::invalidate() {
  cache_.clear();
  ld_cache_.clear();
  ld_cache_built_ = false;
}

void Loader::adopt_caches(const Loader& other) {
  cache_ = other.cache_;
  ld_cache_ = other.ld_cache_;
  ld_cache_built_ = other.ld_cache_built_;
}

std::string_view Loader::expand_origin(std::string_view entry,
                                       std::string_view object_path,
                                       std::string& storage) {
  // Single pass over the entry: both spellings are recognized at each '$'
  // (they cannot overlap), the origin is computed only when a token
  // actually matches, and an entry without one is returned as-is — no
  // allocation on the overwhelmingly common no-DST path.
  std::string origin;
  bool expanding = false;
  std::size_t copied = 0;  // start of the not-yet-copied tail
  for (std::size_t pos = entry.find('$'); pos != std::string_view::npos;
       pos = entry.find('$', pos + 1)) {
    const std::string_view rest = entry.substr(pos);
    std::size_t token = 0;
    if (rest.starts_with("${ORIGIN}")) {
      token = 9;
    } else if (rest.starts_with("$ORIGIN")) {
      token = 7;
    } else {
      continue;
    }
    if (!expanding) {
      expanding = true;
      storage.clear();
      origin = vfs::dirname(object_path);
    }
    storage += entry.substr(copied, pos - copied);
    storage += origin;
    copied = pos + token;
  }
  if (!expanding) return entry;
  storage += entry.substr(copied);
  return storage;
}

std::shared_ptr<const elf::Object> Loader::fetch_object(
    const std::string& path, bool count_read) {
  const support::PathId id = fs_.intern(path);
  if (id == support::PathTable::kNone) {
    // Interner byte budget exhausted: parse uncached (same charges — the
    // read below is the only counted op either way).
    const vfs::FileData* data = fs_.peek(path);
    if (data == nullptr || !elf::looks_like_self(data->bytes)) return nullptr;
    auto object = std::make_shared<const elf::Object>(elf::parse(data->bytes));
    if (count_read) fs_.count_read(path);
    return object;
  }
  const support::PathId canonical = fs_.resolve_canonical(id);
  const support::PathId key =
      canonical != support::PathTable::kNone ? canonical : id;
  if (const auto it = cache_.find(key); it != cache_.end()) {
    if (count_read) fs_.count_read(id);
    return it->second;
  }
  const vfs::FileData* data = fs_.peek(path);
  if (data == nullptr) return nullptr;
  if (!elf::looks_like_self(data->bytes)) return nullptr;
  auto object = std::make_shared<const elf::Object>(elf::parse(data->bytes));
  cache_.emplace(key, object);
  if (count_read) fs_.count_read(id);
  return object;
}

bool Loader::classify_probe(const std::string& path,
                            const vfs::FileData* data, elf::Machine machine) {
  if (data == nullptr) {
    if (probe_log_) probe_log_->push_back("trying " + path + " ... ENOENT");
    return false;
  }
  if (!elf::looks_like_self(data->bytes)) {
    if (probe_log_) {
      probe_log_->push_back("trying " + path + " ... not an object, skipped");
    }
    return false;
  }
  // The System V rule the paper leans on (§IV): a candidate whose
  // architecture does not match is silently ignored and the search goes on.
  elf::Object header = elf::parse(data->bytes);
  if (header.machine != machine) {
    if (probe_log_) {
      probe_log_->push_back("trying " + path +
                            " ... wrong architecture, skipped");
    }
    return false;
  }
  if (probe_log_) probe_log_->push_back("trying " + path + " ... found");
  return true;
}

bool Loader::probe_file(support::PathId id, elf::Machine machine,
                        const std::string* log_as) {
  // kNone (possible past the interner byte budget) probes by string;
  // either way the candidate is charged exactly one counted open(2).
  const vfs::FileData* data = id != support::PathTable::kNone
                                  ? fs_.open(id)
                                  : fs_.open(*log_as);
  return classify_probe(log_as != nullptr ? *log_as : paths_->str(id), data,
                        machine);
}

bool Loader::probe_file(const std::string& path, elf::Machine machine) {
  // Keeps the caller's spelling in the probe log (app-cache and preload
  // paths travel verbatim); interning normalizes for the probe itself.
  return probe_file(fs_.intern(path), machine, &path);
}

support::PathId Loader::intern_dir(std::string_view dir) const {
  if (dir.empty() || dir.front() != '/') {
    return paths_->intern_under(support::PathTable::kRoot, dir);
  }
  return paths_->intern(dir);
}

Loader::DirRef Loader::dir_ref(std::string_view dir) const {
  DirRef ref;
  ref.id = intern_dir(dir);
  if (ref.id == support::PathTable::kNone) ref.text = std::string(dir);
  return ref;
}

Loader::DirProbe Loader::probe_dirs(std::span<const DirRef> dirs,
                                    const std::string& name,
                                    elf::Machine machine) {
  // Lay out every candidate for this soname — hwcaps subdirectories before
  // each plain dir, in dir order — then hand the whole sweep to the VFS as
  // one batched call. Each attempt is charged exactly like a standalone
  // open(2) probe, so counters and latency are byte-identical to the old
  // dir-by-dir loop.
  auto& candidates = scratch_candidates_;
  auto& candidate_dir = scratch_candidate_dir_;
  candidates.clear();
  candidate_dir.clear();
  const bool hwcaps = policy_->probes_hwcaps();
  bool interned = true;
  for (std::size_t d = 0; d < dirs.size() && interned; ++d) {
    if (dirs[d].id == support::PathTable::kNone) {
      interned = false;
      break;
    }
    if (hwcaps) {
      for (const auto& hwcap : config_.hwcaps) {
        const support::PathId sub = paths_->intern_under(dirs[d].id, hwcap);
        const support::PathId cand =
            sub != support::PathTable::kNone ? paths_->child(sub, name)
                                             : support::PathTable::kNone;
        if (cand == support::PathTable::kNone) {
          interned = false;
          break;
        }
        candidates.push_back(cand);
        candidate_dir.push_back(d);
      }
      if (!interned) break;
    }
    const support::PathId cand = paths_->child(dirs[d].id, name);
    if (cand == support::PathTable::kNone) {
      interned = false;
      break;
    }
    candidates.push_back(cand);
    candidate_dir.push_back(d);
  }
  if (interned) {
    const std::size_t hit = fs_.open_first(
        candidates, [&](std::size_t i, const vfs::FileData* data) {
          return classify_probe(paths_->str(candidates[i]), data, machine);
        });
    if (hit == vfs::FileSystem::npos) return DirProbe{};
    return DirProbe{candidate_dir[hit], candidates[hit],
                    paths_->str(candidates[hit])};
  }
  // Interner byte budget exhausted mid-layout (nothing has been probed
  // yet): sweep the same candidates as strings — one counted open(2) per
  // attempt, same order, same probe-log spelling, no interning.
  const auto dir_text = [&](const DirRef& ref) {
    if (ref.id != support::PathTable::kNone) return paths_->str(ref.id);
    return vfs::normalize_path(ref.text.empty() || ref.text.front() != '/'
                                   ? "/" + ref.text
                                   : ref.text);
  };
  for (std::size_t d = 0; d < dirs.size(); ++d) {
    const std::string base = dir_text(dirs[d]);
    const auto join = [&](std::string_view a, std::string_view b) {
      std::string out(a == "/" ? std::string_view{} : a);
      out += '/';
      out += b;
      return out;
    };
    const auto try_path = [&](const std::string& path) {
      const vfs::FileData* data = fs_.open(path);  // counted, budget-safe
      return classify_probe(path, data, machine);
    };
    if (hwcaps) {
      for (const auto& hwcap : config_.hwcaps) {
        const std::string path = join(join(base, hwcap), name);
        if (try_path(path)) return DirProbe{d, support::PathTable::kNone, path};
      }
    }
    const std::string path = join(base, name);
    if (try_path(path)) return DirProbe{d, support::PathTable::kNone, path};
  }
  return DirProbe{};
}

void Loader::ensure_ld_cache() {
  if (ld_cache_built_) return;
  ld_cache_built_ = true;
  ld_cache_.clear();
  auto scan = [&](const std::vector<std::string>& dirs, HowFound how) {
    for (const auto& dir : dirs) {
      if (!fs_.exists(dir)) continue;
      const support::PathId dir_id = intern_dir(dir);
      for (const auto& name : fs_.list_dir(dir)) {
        const std::string path = dir + "/" + name;
        if (!ld_cache_.contains(name)) {
          // Entries keep working past the interner byte budget: a kNone id
          // just means the eventual probe goes by string.
          const support::PathId cand =
              dir_id != support::PathTable::kNone
                  ? paths_->child(dir_id, name)
                  : support::PathTable::kNone;
          ld_cache_.emplace(name, Resolution{path, how, cand});
        }
      }
    }
  };
  scan(config_.ld_so_conf, HowFound::LdSoConf);
  scan(config_.default_paths, HowFound::DefaultPath);
}

std::vector<Loader::DirRef> Loader::effective_rpath_chain(
    const Session& session, std::size_t requester_index,
    std::size_t& own_count) const {
  // Non-melding (glibc, Table I): DT_RPATH of the requester, then of each
  // ancestor up to the executable. Any object carrying DT_RUNPATH
  // contributes nothing from its DT_RPATH, and a requester with DT_RUNPATH
  // disables the whole chain. Melding (musl, §IV): RPATH and RUNPATH of
  // every link in the ancestry, both propagated. Entries come back as
  // interned dir ids — $ORIGIN expansion is the only string work left, and
  // only for entries that actually carry a DST.
  const bool meld = policy_->melds_rpath_runpath();
  std::vector<DirRef> dirs;
  own_count = 0;
  const auto& order = session.report.load_order;
  const LoadedObject& requester = order[requester_index];
  if (!requester.object) return dirs;
  if (!meld && !requester.object->dyn.runpath.empty()) {
    return dirs;  // DT_RUNPATH present: RPATH protocol disabled
  }
  std::int64_t index = static_cast<std::int64_t>(requester_index);
  bool first = true;
  std::string storage;
  while (index >= 0) {
    const LoadedObject& node = order[static_cast<std::size_t>(index)];
    if (node.object) {
      const bool has_runpath = !node.object->dyn.runpath.empty();
      if (meld || !has_runpath) {
        for (const auto& dir : node.object->dyn.rpath) {
          dirs.push_back(dir_ref(expand_origin(dir, node.path, storage)));
          if (first) ++own_count;
        }
      }
      if (meld) {
        for (const auto& dir : node.object->dyn.runpath) {
          dirs.push_back(dir_ref(expand_origin(dir, node.path, storage)));
          if (first) ++own_count;
        }
      }
    }
    first = false;
    index = node.parent_index;
  }
  return dirs;
}

void Loader::note_realpath(Session& session, const std::string& real_path,
                           std::size_t index) const {
  if (real_path.empty()) return;
  if (const support::PathId id = fs_.intern(real_path);
      id != support::PathTable::kNone) {
    session.by_realpath.emplace(id, index);
  } else {  // interner budget exhausted: string-keyed inode proxy
    session.by_realpath_str.emplace(real_path, index);
  }
}

std::optional<std::size_t> Loader::find_realpath(
    const Session& session, const std::string& real_path) const {
  if (const support::PathId id = fs_.intern(real_path);
      id != support::PathTable::kNone) {
    if (const auto it = session.by_realpath.find(id);
        it != session.by_realpath.end()) {
      return it->second;
    }
  } else if (const auto it = session.by_realpath_str.find(real_path);
             it != session.by_realpath_str.end()) {
    return it->second;
  }
  return std::nullopt;
}

std::optional<std::size_t> Loader::dedup_lookup(Session& session,
                                                const std::string& name) const {
  if (const auto it = session.by_name.find(name); it != session.by_name.end()) {
    return it->second;
  }
  if (policy_->dedups_by_soname()) {
    // glibc also satisfies requests from the DT_SONAME of anything already
    // loaded — the dedup Shrinkwrap exploits (Fig 5). Musl does not (§IV).
    if (const auto it = session.by_soname.find(name);
        it != session.by_soname.end()) {
      return it->second;
    }
  }
  return std::nullopt;
}

Loader::Resolution Loader::search(Session& session, const std::string& name,
                                  std::size_t requester_index) {
  const auto& order = session.report.load_order;
  const LoadedObject& requester = order[requester_index];
  const elf::Machine machine =
      order[0].object ? order[0].object->machine : elf::Machine::X86_64;

  // Needed entries containing '/' are used as-is (after DST expansion).
  if (name.find('/') != std::string::npos) {
    std::string storage;
    const std::string_view expanded =
        expand_origin(name, requester.path, storage);
    if (!expanded.empty() && expanded.front() == '/') {
      const support::PathId id = paths_->intern(expanded);
      if (id == support::PathTable::kNone) {  // interner budget exhausted
        std::string path = vfs::normalize_path(expanded);
        if (probe_file(path, machine)) {
          return Resolution{std::move(path), HowFound::AbsolutePath};
        }
        return Resolution{{}, HowFound::NotFound};
      }
      if (probe_file(id, machine)) {
        return Resolution{paths_->str(id), HowFound::AbsolutePath, id};
      }
      return Resolution{{}, HowFound::NotFound};
    }
    // Relative entry with '/': probing throws like open() always has.
    std::string path(expanded);
    if (probe_file(path, machine)) {
      return Resolution{path, HowFound::AbsolutePath};
    }
    return Resolution{{}, HowFound::NotFound};
  }

  // Per-application loader cache: consulted before any directory search.
  if (const auto it = session.app_cache.find(name);
      it != session.app_cache.end()) {
    if (probe_file(it->second, machine)) {
      return Resolution{it->second, HowFound::AppCache};
    }
    // Stale cache entry: fall through to the normal search.
  }

  // Run the policy's phases in dialect order, e.g. glibc (Table I): RPATH
  // chain, LD_LIBRARY_PATH, RUNPATH, ld.so.cache, defaults; musl (§IV):
  // LD_LIBRARY_PATH, melded inherited chain, system dirs.
  for (const SearchPhase phase : policy_->phases()) {
    Resolution res = search_phase(phase, session, name, requester_index,
                                  machine);
    if (res.how != HowFound::NotFound) return res;
  }
  return Resolution{{}, HowFound::NotFound};
}

Loader::Resolution Loader::search_phase(SearchPhase phase, Session& session,
                                        const std::string& name,
                                        std::size_t requester_index,
                                        elf::Machine machine) {
  const LoadedObject& requester =
      session.report.load_order[requester_index];
  // Each phase lays out its full candidate sweep and issues it as one
  // batched probe call; the accepting dir index maps back to the
  // phase-specific HowFound label.
  switch (phase) {
    case SearchPhase::RpathChain: {
      std::size_t own = 0;
      const auto chain = effective_rpath_chain(session, requester_index, own);
      DirProbe hit = probe_dirs(chain, name, machine);
      if (!hit.found()) return Resolution{{}, HowFound::NotFound};
      // Melding dialects historically label only the first own entry as
      // the requester's rpath (musl has no RPATH/RUNPATH distinction to
      // report); non-melding labels every own DT_RPATH entry.
      const bool own_hit = policy_->melds_rpath_runpath()
                               ? (hit.dir == 0 && own > 0)
                               : (hit.dir < own);
      return Resolution{std::move(hit.path),
                        own_hit ? HowFound::Rpath : HowFound::RpathAncestor,
                        hit.id};
    }
    case SearchPhase::LdLibraryPath: {
      std::vector<DirRef> dirs;
      dirs.reserve(session.env->ld_library_path.size());
      for (const auto& dir : session.env->ld_library_path) {
        dirs.push_back(dir_ref(dir));
      }
      DirProbe hit = probe_dirs(dirs, name, machine);
      if (!hit.found()) return Resolution{{}, HowFound::NotFound};
      return Resolution{std::move(hit.path), HowFound::LdLibraryPath, hit.id};
    }
    case SearchPhase::Runpath: {
      if (!requester.object) return Resolution{{}, HowFound::NotFound};
      std::vector<DirRef> dirs;
      dirs.reserve(requester.object->dyn.runpath.size());
      std::string storage;
      for (const auto& dir : requester.object->dyn.runpath) {
        dirs.push_back(dir_ref(expand_origin(dir, requester.path, storage)));
      }
      DirProbe hit = probe_dirs(dirs, name, machine);
      if (!hit.found()) return Resolution{{}, HowFound::NotFound};
      return Resolution{std::move(hit.path), HowFound::Runpath, hit.id};
    }
    case SearchPhase::SystemPaths: {
      if (policy_->uses_ld_cache() && config_.use_ld_cache) {
        ensure_ld_cache();
        if (const auto it = ld_cache_.find(name); it != ld_cache_.end()) {
          // The cache told us where to look; the loader still open()s it.
          if (probe_file(it->second.id, machine, &it->second.path)) {
            return it->second;
          }
        }
        return Resolution{{}, HowFound::NotFound};
      }
      // No cache: sweep ld.so.conf dirs then the trusted defaults as one
      // batch; the boundary index decides the label.
      std::vector<DirRef> dirs;
      dirs.reserve(config_.ld_so_conf.size() + config_.default_paths.size());
      for (const auto& dir : config_.ld_so_conf) {
        dirs.push_back(dir_ref(dir));
      }
      for (const auto& dir : config_.default_paths) {
        dirs.push_back(dir_ref(dir));
      }
      DirProbe hit = probe_dirs(dirs, name, machine);
      if (!hit.found()) return Resolution{{}, HowFound::NotFound};
      return Resolution{std::move(hit.path),
                        hit.dir < config_.ld_so_conf.size()
                            ? HowFound::LdSoConf
                            : HowFound::DefaultPath,
                        hit.id};
    }
  }
  return Resolution{{}, HowFound::NotFound};
}

std::size_t Loader::register_object(Session& session, LoadedObject loaded) {
  auto& order = session.report.load_order;
  const std::size_t index = order.size();
  // Dedup keys. Musl never dedups by soname (§IV); both dedup by the
  // requested string and by canonical path (the inode proxy).
  session.by_name.emplace(loaded.name, index);
  note_realpath(session, loaded.real_path, index);
  if (loaded.object && !loaded.object->dyn.soname.empty() &&
      policy_->dedups_by_soname()) {
    session.by_soname.emplace(loaded.object->dyn.soname, index);
  }
  order.push_back(std::move(loaded));
  return index;
}

LoadReport Loader::load(const std::string& exe_path, const Environment& env) {
  Session session;
  session.env = &env;
  session.report.success = true;
  probe_log_ = config_.record_probes ? &session.report.probe_log : nullptr;
  const vfs::SyscallStats before = fs_.stats();

  // Open + read the executable itself (execve's work).
  const vfs::FileData* exe_data = fs_.open(exe_path);
  if (exe_data == nullptr) {
    throw FsError("cannot execute: " + exe_path);
  }
  auto exe_object = fetch_object(exe_path, /*count_read=*/true);
  if (!exe_object) {
    throw ElfError("not a SELF executable: " + exe_path);
  }
  // Read the per-application loader cache, if enabled and present. The
  // loader pays one open() for the cache file itself.
  if (config_.use_app_cache) {
    const std::string cache_path = exe_path + config_.app_cache_suffix;
    if (const vfs::FileData* cache = fs_.open(cache_path)) {
      for (const auto& line : support::split(cache->bytes, '\n')) {
        const auto space = line.find(' ');
        if (space == std::string::npos) continue;
        session.app_cache.emplace(line.substr(0, space),
                                  line.substr(space + 1));
      }
    }
  }

  LoadedObject root;
  root.name = exe_path;
  root.path = exe_path;
  root.real_path = fs_.realpath(exe_path).value_or(exe_path);
  root.how = HowFound::Root;
  root.depth = 0;
  root.parent_index = -1;
  root.object = exe_object;
  register_object(session, std::move(root));

  std::deque<WorkItem> queue;

  // LD_PRELOAD objects load before anything from the needed lists and are
  // searched with the executable as the requester.
  for (const auto& preload : env.ld_preload) {
    Resolution res;
    if (preload.find('/') != std::string::npos) {
      res = probe_file(preload, exe_object->machine)
                ? Resolution{preload, HowFound::Preload}
                : Resolution{{}, HowFound::NotFound};
    } else {
      res = search(session, preload, 0);
      if (res.how != HowFound::NotFound) res.how = HowFound::Preload;
    }
    LoadedObject loaded;
    loaded.name = preload;
    loaded.requested_by = "LD_PRELOAD";
    loaded.depth = 1;
    loaded.parent_index = 0;
    loaded.how = res.how;
    if (res.how == HowFound::NotFound) {
      session.report.requests.push_back(loaded);
      session.report.missing.push_back(loaded);
      // glibc warns but continues on missing preloads.
      continue;
    }
    loaded.path = res.path;
    loaded.real_path = fs_.realpath(res.path).value_or(res.path);
    loaded.object = fetch_object(res.path, /*count_read=*/true);
    session.report.requests.push_back(loaded);
    register_object(session, std::move(loaded));
  }

  // Initial BFS scope: the executable's needed entries, then each
  // preload's, exactly the order ld.so seeds its link-map search list.
  for (std::size_t i = 0; i < session.report.load_order.size(); ++i) {
    enqueue_needed_deque(session, i, queue);
  }

  while (!queue.empty()) {
    const WorkItem item = std::move(queue.front());
    queue.pop_front();
    process_request(session, item, queue);
  }

  session.report.stats = stats_delta(before, fs_.stats());
  probe_log_ = nullptr;
  return session.report;
}

void Loader::process_request(Session& session, const WorkItem& item,
                             std::deque<WorkItem>& queue) {
  const LoadedObject& requester = session.report.load_order[item.requester_index];

  LoadedObject request;
  request.name = item.name;
  request.requested_by = requester.path;
  request.depth = requester.depth + 1;
  request.parent_index = static_cast<std::int64_t>(item.requester_index);

  // Dedup by name/soname before touching the filesystem.
  if (const auto hit = dedup_lookup(session, item.name)) {
    const LoadedObject& original = session.report.load_order[*hit];
    request.path = original.path;
    request.real_path = original.real_path;
    request.how = HowFound::Cache;
    request.object = original.object;
    if (config_.classify_cache_hits) {
      // What would a pure search from this requester have found? Probe
      // uncounted (and unlogged) so the measured workload is unchanged.
      fs_.set_counting(false);
      std::vector<std::string>* saved_log = probe_log_;
      probe_log_ = nullptr;
      const Resolution shadow = search(session, item.name, item.requester_index);
      probe_log_ = saved_log;
      fs_.set_counting(true);
      request.cache_search_how = shadow.how;
    }
    session.report.requests.push_back(std::move(request));
    return;
  }

  Resolution res = search(session, item.name, item.requester_index);
  if (res.how == HowFound::NotFound) {
    request.how = HowFound::NotFound;
    session.report.requests.push_back(request);
    session.report.missing.push_back(std::move(request));
    session.report.success = false;
    return;
  }

  request.path = res.path;
  request.real_path = fs_.realpath(res.path).value_or(res.path);

  // Post-resolution inode dedup (both dialects; this is how musl avoids
  // double-loading a file reached via two different strings).
  const auto real_hit = find_realpath(session, request.real_path);
  if (real_hit.has_value()) {
    const LoadedObject& original = session.report.load_order[*real_hit];
    request.how = HowFound::Cache;
    request.object = original.object;
    // Record the requested name as now-known (glibc adds it to l_libname).
    session.by_name.emplace(item.name, *real_hit);
    session.report.requests.push_back(std::move(request));
    return;
  }

  request.how = res.how;
  request.object = fetch_object(res.path, /*count_read=*/true);
  assert(request.object && "probe succeeded but fetch failed");
  session.report.requests.push_back(request);
  const std::size_t index = register_object(session, std::move(request));
  enqueue_needed_deque(session, index, queue);
}

void Loader::enqueue_needed_deque(Session& session, std::size_t index,
                                  std::deque<WorkItem>& queue) {
  const auto& obj = session.report.load_order[index];
  if (!obj.object) return;
  for (const auto& entry : obj.object->dyn.needed) {
    queue.push_back(WorkItem{entry, index});
  }
}

LoadedObject Loader::dlopen(LoadReport& report, const std::string& caller_path,
                            const std::string& name, const Environment& env) {
  // Rebuild session state from the existing report.
  Session session;
  session.env = &env;
  session.report = std::move(report);
  for (std::size_t i = 0; i < session.report.load_order.size(); ++i) {
    const auto& obj = session.report.load_order[i];
    session.by_name.emplace(obj.name, i);
    note_realpath(session, obj.real_path, i);
    if (policy_->dedups_by_soname() && obj.object &&
        !obj.object->dyn.soname.empty()) {
      session.by_soname.emplace(obj.object->dyn.soname, i);
    }
  }
  std::size_t caller_index = 0;
  bool caller_found = false;
  for (std::size_t i = 0; i < session.report.load_order.size(); ++i) {
    const auto& obj = session.report.load_order[i];
    if (obj.path == caller_path || obj.real_path == caller_path) {
      caller_index = i;
      caller_found = true;
      break;
    }
  }
  if (!caller_found) {
    report = std::move(session.report);
    throw Error("dlopen caller not loaded: " + caller_path);
  }

  const vfs::SyscallStats before = fs_.stats();
  std::deque<WorkItem> queue;
  queue.push_back(WorkItem{name, caller_index});
  const std::size_t first_request = session.report.requests.size();
  while (!queue.empty()) {
    const WorkItem item = std::move(queue.front());
    queue.pop_front();
    process_request(session, item, queue);
  }
  auto delta = stats_delta(before, fs_.stats());
  session.report.stats += delta;

  LoadedObject result = session.report.requests[first_request];
  report = std::move(session.report);
  return result;
}

}  // namespace depchaos::loader
