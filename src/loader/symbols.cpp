#include "depchaos/loader/symbols.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "depchaos/elf/patcher.hpp"

namespace depchaos::loader {

BindReport bind_symbols(const LoadReport& report) {
  BindReport out;

  // First pass: which objects define which symbols, in load order.
  struct Definition {
    std::string path;
    bool weak;
    std::string version;
  };
  std::unordered_map<std::string, std::vector<Definition>> definitions;
  for (const auto& loaded : report.load_order) {
    if (!loaded.object) continue;
    for (const auto& sym : loaded.object->symbols) {
      if (!sym.defined || sym.binding == elf::SymbolBinding::Local) continue;
      definitions[sym.name].push_back(Definition{
          loaded.path, sym.binding == elf::SymbolBinding::Weak, sym.version});
    }
  }

  // Interpositions: any multiply-defined global symbol.
  for (const auto& [name, defs] : definitions) {
    if (defs.size() < 2) continue;
    ShadowedSymbol shadow;
    shadow.symbol = name;
    shadow.winner_path = defs.front().path;
    for (std::size_t i = 1; i < defs.size(); ++i) {
      shadow.shadowed_paths.push_back(defs[i].path);
    }
    out.interpositions.push_back(std::move(shadow));
  }
  std::sort(out.interpositions.begin(), out.interpositions.end(),
            [](const auto& a, const auto& b) { return a.symbol < b.symbol; });

  // Second pass: bind every undefined reference to the first definer.
  std::set<std::string> seen;
  for (const auto& loaded : report.load_order) {
    if (!loaded.object) continue;
    for (const auto& sym : loaded.object->symbols) {
      if (sym.defined) continue;
      if (!seen.insert(sym.name).second) continue;
      const auto it = definitions.find(sym.name);
      const Definition* chosen = nullptr;
      if (it != definitions.end()) {
        // Versioned reference: exact version match, or an unversioned
        // definition (glibc's compatibility fallback). Unversioned
        // reference: anything with the right name.
        for (const Definition& def : it->second) {
          if (sym.version.empty() || def.version.empty() ||
              def.version == sym.version) {
            chosen = &def;
            break;
          }
        }
      }
      if (chosen == nullptr) {
        if (sym.binding != elf::SymbolBinding::Weak) {
          out.unresolved.push_back(sym.display());
        }
        continue;
      }
      out.provider.emplace(sym.name, chosen->path);
      out.bindings.push_back(BoundSymbol{sym.name, chosen->path, chosen->weak});
    }
  }
  std::sort(out.unresolved.begin(), out.unresolved.end());
  return out;
}

LinkResult link_check(const vfs::FileSystem& fs, const std::string& exe_path,
                      const std::vector<std::string>& lib_paths) {
  LinkResult result;
  std::map<std::string, int> strong_definitions;
  std::set<std::string> any_definition;
  std::set<std::string> references;

  auto absorb = [&](const elf::Object& object) {
    for (const auto& sym : object.symbols) {
      if (sym.defined) {
        if (sym.binding == elf::SymbolBinding::Global) {
          ++strong_definitions[sym.name];
        }
        if (sym.binding != elf::SymbolBinding::Local) {
          any_definition.insert(sym.name);
        }
      } else if (sym.binding != elf::SymbolBinding::Weak) {
        references.insert(sym.name);
      }
    }
  };

  absorb(elf::read_object(fs, exe_path));
  for (const auto& path : lib_paths) {
    absorb(elf::read_object(fs, path));
  }

  for (const auto& [name, count] : strong_definitions) {
    if (count > 1) result.duplicate_strong.push_back(name);
  }
  for (const auto& name : references) {
    if (!any_definition.contains(name)) result.undefined.push_back(name);
  }
  result.ok = result.duplicate_strong.empty() && result.undefined.empty();
  return result;
}

}  // namespace depchaos::loader
