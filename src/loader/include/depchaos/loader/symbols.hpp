// Symbol binding and link-time checks.
//
// Two behaviours from the paper live here:
//  * Runtime binding: the global symbol search walks objects in load order,
//    first definition wins. This is what makes LD_PRELOAD interposition
//    (PMPI tools, gperf) work (§III-B) and what decides the
//    libomp/libompstubs race (§V-B.2): "whichever loads first wins".
//  * Link-time check: the Needy Executables workaround (§III-D2) puts the
//    whole transitive closure on the link line, which *fails* when two
//    libraries define the same strong symbol — the exact reason Shrinkwrap
//    (which never touches the link line) is needed.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "depchaos/loader/loader.hpp"

namespace depchaos::loader {

/// Result of binding one symbol.
struct BoundSymbol {
  std::string symbol;
  std::string provider_path;  // object whose definition won
  bool weak = false;          // the winning definition was weak
};

/// A symbol defined by more than one loaded object; the earlier object wins.
struct ShadowedSymbol {
  std::string symbol;
  std::string winner_path;
  std::vector<std::string> shadowed_paths;
};

struct BindReport {
  std::unordered_map<std::string, std::string> provider;  // symbol -> path
  std::vector<BoundSymbol> bindings;
  std::vector<std::string> unresolved;       // undefined with no provider
  std::vector<ShadowedSymbol> interpositions;

  const std::string* provider_of(const std::string& symbol) const {
    const auto it = provider.find(symbol);
    return it == provider.end() ? nullptr : &it->second;
  }
};

/// Bind every undefined reference in the loaded set by scanning objects in
/// load order (executable, preloads, then BFS order).
BindReport bind_symbols(const LoadReport& report);

struct LinkResult {
  bool ok = true;
  std::vector<std::string> duplicate_strong;  // symbols defined twice strong
  std::vector<std::string> undefined;         // unsatisfied strong refs
};

/// Simulate putting `lib_paths` on a static link line for `exe_path`:
/// duplicate strong definitions across distinct objects are an error, as is
/// any undefined reference with no definition anywhere on the line.
LinkResult link_check(const vfs::FileSystem& fs, const std::string& exe_path,
                      const std::vector<std::string>& lib_paths);

}  // namespace depchaos::loader
