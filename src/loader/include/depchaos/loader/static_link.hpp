// Static linking (§III-B "Questioning Dynamic Linking").
//
// Fold an executable's dynamic closure into one self-contained image:
// startup needs exactly one open (no search, no loader at all), but
//  * duplicate strong symbols across the closure break the link,
//  * LD_PRELOAD interposition (PMPI tools, gperf) stops working — there are
//    no undefined references left to interpose on,
//  * memory/disk dedup across DIFFERENT binaries sharing the same libraries
//    is lost — quantified by `estimate_system_cost` over a Fig 4-shaped
//    installed system.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "depchaos/elf/object.hpp"
#include "depchaos/loader/symbols.hpp"
#include "depchaos/vfs/vfs.hpp"

namespace depchaos::loader {

struct StaticLinkResult {
  bool ok = false;
  LinkResult check;        // why the link failed, if it did
  elf::Object merged;      // the static image (valid when ok)
  std::uint64_t image_size = 0;  // bytes of the merged image
};

/// Link `exe_path` and its libraries into one static image. Does not modify
/// the filesystem; callers install the merged object where they want it.
StaticLinkResult static_link(const vfs::FileSystem& fs,
                             const std::string& exe_path,
                             const std::vector<std::string>& closure_paths);

/// Disk/memory cost of a whole system of binaries under both regimes.
/// `binary_lib_sizes[b]` holds the sizes of the libraries binary b links;
/// `binary_sizes[b]` the binary's own size. Dynamic: every distinct library
/// is resident once (shared pages); static: every binary carries copies.
struct SystemCost {
  std::uint64_t dynamic_bytes = 0;
  std::uint64_t static_bytes = 0;
  double blowup() const {
    return dynamic_bytes == 0
               ? 0
               : static_cast<double>(static_bytes) /
                     static_cast<double>(dynamic_bytes);
  }
};

SystemCost estimate_system_cost(
    const std::vector<std::uint64_t>& binary_sizes,
    const std::vector<std::vector<std::size_t>>& binary_deps,
    const std::vector<std::uint64_t>& lib_sizes);

}  // namespace depchaos::loader
