// Pluggable loader-dialect policy.
//
// The paper's §IV contrast between glibc and musl is not one switch but a
// bundle of independent semantic choices: the order of the bare-soname
// search phases, which dedup keys satisfy a repeated request (Fig 5's
// soname cache), whether DT_RPATH and DT_RUNPATH are separate protocols or
// a meld (Table I), whether hwcaps subdirectories are probed, and whether
// an ld.so.cache short-circuits the system directories. SearchPolicy turns
// each of those into a virtual policy point so a dialect is data, not a
// hardcoded branch inside Loader — and new dialects (or experimental
// hybrids) plug in without touching the BFS machinery.
//
// `Dialect` remains the stable back-compat factory enum: every constructor
// that used to take a Dialect still does, routed through
// SearchPolicy::for_dialect().
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>

namespace depchaos::loader {

enum class Dialect : std::uint8_t { Glibc, Musl };

/// One step of the bare-soname directory search.
enum class SearchPhase : std::uint8_t {
  RpathChain,     // requester's DT_RPATH + inherited ancestor chain
                  // (includes melded DT_RUNPATH under musl)
  LdLibraryPath,  // environment override dirs
  Runpath,        // requester's own DT_RUNPATH (separate phase: glibc only)
  SystemPaths,    // ld.so.cache / ld.so.conf dirs / built-in defaults
};

class SearchPolicy {
 public:
  virtual ~SearchPolicy() = default;

  virtual std::string_view name() const = 0;

  /// The bare-name search phases, in the order this dialect runs them.
  virtual std::span<const SearchPhase> phases() const = 0;

  /// Fig 5 dedup: may a bare-soname request be satisfied from the
  /// DT_SONAME of an already-loaded object? glibc yes — the behaviour
  /// Shrinkwrap exploits; musl no — which is what breaks wrapped binaries
  /// there (§IV). Both dialects always dedup by requested string and by
  /// canonical path (inode).
  virtual bool dedups_by_soname() const = 0;

  /// RPATH/RUNPATH melding (§IV): when true, both propagate to
  /// dependencies and are searched as one inherited chain (musl). When
  /// false, only DT_RPATH propagates, and a requester carrying DT_RUNPATH
  /// disables its whole RPATH protocol (glibc, Table I).
  virtual bool melds_rpath_runpath() const = 0;

  /// Probe glibc-hwcaps subdirectories before each plain directory.
  virtual bool probes_hwcaps() const = 0;

  /// Consult the ld.so.cache during SystemPaths (subject to
  /// SearchConfig::use_ld_cache); musl always probes the directories.
  virtual bool uses_ld_cache() const = 0;

  // ---- factory ------------------------------------------------------------

  /// Built-in policy singletons (stateless, shareable across loaders).
  static const SearchPolicy& glibc();
  static const SearchPolicy& musl();
  static const SearchPolicy& for_dialect(Dialect dialect);

  /// Shared-ptr aliases of the singletons for APIs that hold ownership.
  static std::shared_ptr<const SearchPolicy> shared(Dialect dialect);

  /// Best-effort inverse of for_dialect (custom policies map onto the
  /// dialect whose dedup semantics they follow — the distinction consumers
  /// actually branch on).
  static Dialect dialect_of(const SearchPolicy& policy);
};

/// glibc (Table I): RPATH chain, LD_LIBRARY_PATH, RUNPATH, ld.so.cache,
/// defaults; soname dedup; hwcaps probing.
class GlibcPolicy : public SearchPolicy {
 public:
  std::string_view name() const override { return "glibc"; }
  std::span<const SearchPhase> phases() const override;
  bool dedups_by_soname() const override { return true; }
  bool melds_rpath_runpath() const override { return false; }
  bool probes_hwcaps() const override { return true; }
  bool uses_ld_cache() const override { return true; }
};

/// musl (§IV): LD_LIBRARY_PATH first, then the melded inherited
/// rpath/runpath chain, then system dirs; inode-only dedup; no hwcaps.
class MuslPolicy : public SearchPolicy {
 public:
  std::string_view name() const override { return "musl"; }
  std::span<const SearchPhase> phases() const override;
  bool dedups_by_soname() const override { return false; }
  bool melds_rpath_runpath() const override { return true; }
  bool probes_hwcaps() const override { return false; }
  bool uses_ld_cache() const override { return false; }
};

}  // namespace depchaos::loader
