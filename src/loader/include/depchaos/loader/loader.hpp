// Dynamic loader simulator.
//
// Reproduces the search and deduplication semantics the paper analyzes
// (§III). The dialect-specific choices (search-phase order, dedup keys,
// RPATH/RUNPATH melding, hwcaps, ld.so.cache use) are factored into the
// pluggable loader::SearchPolicy interface (search_policy.hpp); the two
// built-in policies are:
//
//  Glibc:
//   * For a needed name without '/', search in order: DT_RPATH of the
//     requesting object and then of its ancestors up to the executable
//     (an object's RPATH is ignored entirely if that object has a
//     DT_RUNPATH — Table I "propagates"), LD_LIBRARY_PATH, DT_RUNPATH of
//     the requesting object only, the ld.so.cache (built from ld.so.conf
//     directories), and finally the default paths.
//   * Loaded objects are deduplicated by requested name, by DT_SONAME, and
//     by canonical path (dev/inode) — the behaviour Shrinkwrap exploits
//     (Fig 5): an object loaded by absolute path satisfies later bare-soname
//     requests from its cached DT_SONAME.
//   * Candidates with a mismatched machine are silently skipped (§IV).
//   * glibc-hwcaps subdirectories are probed before each plain directory.
//  Musl:
//   * RPATH and RUNPATH are melded: both propagate to dependencies but are
//     searched *after* LD_LIBRARY_PATH (§IV).
//   * Deduplication is by exact needed string and by inode only — never by
//     soname, which is what breaks Shrinkwrap'd binaries on musl (§IV).
//
// Loading is breadth-first from the executable's DT_NEEDED list, matching
// ld.so; each object is charged the open(2) probes its search emits against
// the VFS, which is where Table II's syscall counts come from.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "depchaos/elf/object.hpp"
#include "depchaos/loader/search_policy.hpp"
#include "depchaos/vfs/vfs.hpp"

namespace depchaos::loader {

/// Process environment relevant to the loader.
struct Environment {
  std::vector<std::string> ld_library_path;
  std::vector<std::string> ld_preload;

  static Environment with_library_path(std::vector<std::string> dirs) {
    Environment env;
    env.ld_library_path = std::move(dirs);
    return env;
  }
};

/// System-level loader configuration (a distribution's ld.so.conf).
struct SearchConfig {
  /// Directories listed in ld.so.conf(.d), indexed into ld.so.cache.
  std::vector<std::string> ld_so_conf;
  /// Built-in trusted directories.
  std::vector<std::string> default_paths = {"/lib64", "/usr/lib64", "/lib",
                                            "/usr/lib"};
  /// glibc-hwcaps style subdirectories probed inside each search dir,
  /// best first (e.g. {"glibc-hwcaps/x86-64-v3", "glibc-hwcaps/x86-64-v2"}).
  std::vector<std::string> hwcaps;
  /// Model ld.so.cache: lookups in ld_so_conf/default dirs cost no probes.
  /// When false every directory is probed with open() like any other.
  bool use_ld_cache = true;
  /// For dedup (cache) hits, additionally classify how the requester's OWN
  /// search would have fared — uncounted — so libtree can render Listing 1:
  /// a library satisfied only because an earlier subtree loaded it shows up
  /// as "not found" in a pure search analysis.
  bool classify_cache_hits = false;
  /// Guix-style per-application loader cache (Courtès, "Taming the stat
  /// storm with a loader cache", referenced in §V-A): when enabled and
  /// "<exe>.ldcache" exists, its name->path map is consulted BEFORE any
  /// directory search. Reading the cache costs one open; each hit costs one
  /// direct open of the target — comparable to Shrinkwrap's savings without
  /// rewriting the binary, but tied to a side file the environment must
  /// preserve.
  bool use_app_cache = false;
  std::string app_cache_suffix = ".ldcache";
  /// LD_DEBUG=libs-style probe trace: record every candidate path the
  /// search touches, with its outcome, into LoadReport::probe_log.
  bool record_probes = false;
};

/// How a dependency was ultimately located (libtree's annotations).
enum class HowFound : std::uint8_t {
  Root,           // the executable itself
  AbsolutePath,   // DT_NEEDED contained '/'
  Cache,          // already loaded (dedup hit)
  Preload,        // LD_PRELOAD
  AppCache,       // per-application loader cache file (§V-A reference)
  Rpath,          // requester's DT_RPATH
  RpathAncestor,  // an ancestor's DT_RPATH (propagation, Table I)
  LdLibraryPath,  // LD_LIBRARY_PATH
  Runpath,        // requester's DT_RUNPATH
  LdSoConf,       // ld.so.cache hit from ld.so.conf dirs
  DefaultPath,    // trusted default dirs
  NotFound,
};

std::string_view how_found_name(HowFound how);

struct LoadedObject {
  std::string name;          // requested needed string
  std::string path;          // where it was found ("" when NotFound)
  std::string real_path;     // canonical path (symlinks resolved)
  std::string requested_by;  // path of the requesting object ("" for root)
  HowFound how = HowFound::NotFound;
  int depth = 0;  // BFS depth; 0 = executable
  /// Index into LoadReport::load_order of the object whose needed list
  /// caused this load (-1 for the executable). Drives RPATH ancestor
  /// propagation.
  std::int64_t parent_index = -1;
  /// Only meaningful when how == Cache and SearchConfig::classify_cache_hits
  /// is set: how the requester's own search would have resolved this name
  /// (NotFound means "works only because something else loaded it first").
  /// Cache = unclassified (the option was off).
  HowFound cache_search_how = HowFound::Cache;
  std::shared_ptr<const elf::Object> object;  // null when NotFound
};

struct LoadReport {
  bool success = false;
  /// Objects in load (BFS) order; index 0 is the executable. Dedup hits are
  /// NOT repeated here; `requests` below records every edge.
  std::vector<LoadedObject> load_order;
  /// Every needed-edge request, including cache hits and misses, in the
  /// order the loader processed them (libtree renders this).
  std::vector<LoadedObject> requests;
  /// Unresolved needed entries.
  std::vector<LoadedObject> missing;
  /// Syscall traffic attributable to this load (delta on the VFS counters).
  vfs::SyscallStats stats;
  /// When SearchConfig::record_probes is set: one line per candidate probe,
  /// `LD_DEBUG=libs` style ("trying /path ... ENOENT").
  std::vector<std::string> probe_log;

  const LoadedObject* find_loaded(std::string_view path_or_soname) const;
};

class Loader {
 public:
  /// Back-compat factory-enum constructor: the dialect names one of the
  /// built-in SearchPolicy singletons.
  explicit Loader(vfs::FileSystem& fs, SearchConfig config = {},
                  Dialect dialect = Dialect::Glibc);

  /// Pluggable-policy constructor. `policy` must be non-null.
  Loader(vfs::FileSystem& fs, SearchConfig config,
         std::shared_ptr<const SearchPolicy> policy);

  /// Simulate process startup: load `exe_path` and its full closure.
  LoadReport load(const std::string& exe_path, const Environment& env = {});

  /// Simulate dlopen(name) issued from code in `caller_path`, continuing an
  /// existing load. glibc semantics: the caller's RPATH chain and RUNPATH
  /// apply, the executable's RUNPATH does not (§III-A, the Qt plugin trap).
  LoadedObject dlopen(LoadReport& report, const std::string& caller_path,
                      const std::string& name, const Environment& env = {});

  const SearchConfig& config() const { return config_; }
  /// The active dialect policy (search order, dedup keys, melding rules).
  const SearchPolicy& policy() const { return *policy_; }
  /// Back-compat: the factory enum this loader was built from (custom
  /// policies map onto the dialect whose dedup semantics they follow).
  Dialect dialect() const { return dialect_; }

 private:
  struct Resolution {
    std::string path;
    HowFound how = HowFound::NotFound;
    /// Interned id of `path` when the resolver produced one (probe reuse);
    /// kNone for paths carried through verbatim (app cache, preloads) or
    /// produced past the interner's byte budget.
    support::PathId id = support::PathTable::kNone;
  };

  /// A search directory for probe_dirs: interned on the fast path; `text`
  /// carries the original spelling only when interning hit the
  /// PathTable's byte budget (the uncached string-sweep fallback).
  struct DirRef {
    support::PathId id = support::PathTable::kNone;
    std::string text;
  };

  /// Outcome of a batched directory sweep: which search dir accepted the
  /// candidate (index into the swept dir list), the candidate's id (kNone
  /// on the budget-fallback sweep), and its path string.
  struct DirProbe {
    std::size_t dir = vfs::FileSystem::npos;
    support::PathId id = support::PathTable::kNone;
    std::string path;
    bool found() const { return dir != vfs::FileSystem::npos; }
  };

  // Pending BFS work item: `needed` entry requested by load_order[req_index].
  struct WorkItem {
    std::string name;
    std::size_t requester_index;
  };

  // Per-load mutable state.
  struct Session {
    LoadReport report;
    // Dedup indices into report.load_order. Names and sonames are request
    // strings; the inode-proxy map is keyed by interned canonical PathId,
    // with a string-keyed sibling for real paths that could not be
    // interned past the byte budget (a path interns to the same id — or
    // consistently fails — every time, so the two maps never alias).
    std::unordered_map<std::string, std::size_t> by_name;      // request str
    std::unordered_map<std::string, std::size_t> by_soname;    // DT_SONAME
    std::unordered_map<support::PathId, std::size_t> by_realpath;
    std::unordered_map<std::string, std::size_t> by_realpath_str;
    // Parsed per-application loader cache ("" when absent/disabled).
    std::unordered_map<std::string, std::string> app_cache;
    const Environment* env = nullptr;
  };

  std::shared_ptr<const elf::Object> fetch_object(const std::string& path,
                                                  bool count_read);
  std::optional<std::size_t> dedup_lookup(Session& session,
                                          const std::string& name) const;
  /// The inode-proxy dedup invariant in one place: a real path keys
  /// by_realpath when it interns, by_realpath_str when the byte budget
  /// refuses it — and a given path lands in the same map every time.
  void note_realpath(Session& session, const std::string& real_path,
                     std::size_t index) const;
  std::optional<std::size_t> find_realpath(const Session& session,
                                           const std::string& real_path) const;
  Resolution search(Session& session, const std::string& name,
                    std::size_t requester_index);
  /// Intern a search directory: absolute dirs directly, relative dirs (a
  /// historic security hole) resolved against / — functional but
  /// unremarkable, as before. kNone past the interner byte budget.
  support::PathId intern_dir(std::string_view dir) const;
  /// intern_dir + the original spelling kept for the budget fallback.
  DirRef dir_ref(std::string_view dir) const;
  /// Sweep `dirs` for `name`, hwcaps subdirectories before each plain dir,
  /// as ONE batched VFS probe call — candidates are (dir id, name) steps in
  /// the interner, never string concatenation. When candidate interning
  /// hits the byte budget the sweep degrades to per-candidate string
  /// probes with identical counters, latency, and probe-log lines.
  DirProbe probe_dirs(std::span<const DirRef> dirs, const std::string& name,
                      elf::Machine machine);
  /// Shared probe verdict: ELF magic + architecture checks with LD_DEBUG
  /// style logging. `data` is the already-opened candidate (null = ENOENT).
  bool classify_probe(const std::string& path, const vfs::FileData* data,
                      elf::Machine machine);
  /// Single ELF-validity probe of one candidate. `log_as` overrides the
  /// probe-log spelling (paths carried verbatim from caches/preloads keep
  /// their original bytes); by default the interned string is logged.
  bool probe_file(support::PathId id, elf::Machine machine,
                  const std::string* log_as = nullptr);
  bool probe_file(const std::string& path, elf::Machine machine);
  void ensure_ld_cache();
  std::size_t register_object(Session& session, LoadedObject loaded);
  void process_request(Session& session, const WorkItem& item,
                       std::deque<WorkItem>& queue);
  void enqueue_needed_deque(Session& session, std::size_t index,
                            std::deque<WorkItem>& queue);
  Resolution search_phase(SearchPhase phase, Session& session,
                          const std::string& name, std::size_t requester_index,
                          elf::Machine machine);
  /// The inherited rpath chain for `requester`, as interned dir refs.
  /// `own_count` receives how many leading entries came from the
  /// requester's own dynamic section (they are reported HowFound::Rpath;
  /// the rest RpathAncestor).
  std::vector<DirRef> effective_rpath_chain(const Session& session,
                                            std::size_t requester_index,
                                            std::size_t& own_count) const;

  /// Expand $ORIGIN/${ORIGIN} in one pass. Returns `entry` itself when
  /// there is nothing to expand (no allocation — the common case), else a
  /// view of `storage` holding the expansion.
  static std::string_view expand_origin(std::string_view entry,
                                        std::string_view object_path,
                                        std::string& storage);

  vfs::FileSystem& fs_;
  // The world's interner (shared across the whole fork family); candidate
  // construction, closure keys, and the parsed-object cache all speak ids.
  std::shared_ptr<support::PathTable> paths_;
  SearchConfig config_;
  std::shared_ptr<const SearchPolicy> policy_;
  Dialect dialect_;
  // Parsed-object cache keyed by canonical PathId (never invalidated:
  // loads are read-only with respect to binaries; Patcher edits go through
  // the VFS, so tests that patch then reload construct a fresh Loader or
  // call invalidate()).
  std::unordered_map<support::PathId, std::shared_ptr<const elf::Object>>
      cache_;
  // ld.so.cache: name -> (path, from ld_so_conf or default).
  std::unordered_map<std::string, Resolution> ld_cache_;
  bool ld_cache_built_ = false;
  // Scratch for probe_dirs (reused so the per-soname sweep allocates only
  // on high-water growth).
  std::vector<support::PathId> scratch_candidates_;
  std::vector<std::size_t> scratch_candidate_dir_;
  // Active probe log during a load() (null when record_probes is off).
  std::vector<std::string>* probe_log_ = nullptr;

 public:
  /// Drop parsed-object and ld.so caches (after patching binaries).
  void invalidate();

  /// Seed this loader's parsed-object and ld.so caches from another loader
  /// whose filesystem is identical to ours — the fork boundary in
  /// core::Session::fork(). Safe because parsed objects are immutable
  /// shared_ptr<const> values and a freshly forked world is byte-identical
  /// to its parent; after either side patches binaries, the usual
  /// invalidate() convention applies to that side's loader only.
  void adopt_caches(const Loader& other);
};

}  // namespace depchaos::loader
