#include "depchaos/loader/search_policy.hpp"

namespace depchaos::loader {

namespace {

constexpr SearchPhase kGlibcPhases[] = {
    SearchPhase::RpathChain,
    SearchPhase::LdLibraryPath,
    SearchPhase::Runpath,
    SearchPhase::SystemPaths,
};

constexpr SearchPhase kMuslPhases[] = {
    SearchPhase::LdLibraryPath,
    SearchPhase::RpathChain,  // melded rpath+runpath, inherited
    SearchPhase::SystemPaths,
};

}  // namespace

std::span<const SearchPhase> GlibcPolicy::phases() const {
  return kGlibcPhases;
}

std::span<const SearchPhase> MuslPolicy::phases() const {
  return kMuslPhases;
}

const SearchPolicy& SearchPolicy::glibc() {
  static const GlibcPolicy policy;
  return policy;
}

const SearchPolicy& SearchPolicy::musl() {
  static const MuslPolicy policy;
  return policy;
}

const SearchPolicy& SearchPolicy::for_dialect(Dialect dialect) {
  return dialect == Dialect::Musl ? musl() : glibc();
}

std::shared_ptr<const SearchPolicy> SearchPolicy::shared(Dialect dialect) {
  // Aliasing ctor onto the singletons: no ownership, no deletion.
  return std::shared_ptr<const SearchPolicy>(std::shared_ptr<void>(),
                                             &for_dialect(dialect));
}

Dialect SearchPolicy::dialect_of(const SearchPolicy& policy) {
  return policy.dedups_by_soname() ? Dialect::Glibc : Dialect::Musl;
}

}  // namespace depchaos::loader
