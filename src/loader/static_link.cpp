#include "depchaos/loader/static_link.hpp"

#include <set>

#include "depchaos/elf/patcher.hpp"

namespace depchaos::loader {

StaticLinkResult static_link(const vfs::FileSystem& fs,
                             const std::string& exe_path,
                             const std::vector<std::string>& closure_paths) {
  StaticLinkResult result;
  result.check = link_check(fs, exe_path, closure_paths);
  if (!result.check.ok) return result;

  const elf::Object exe = elf::read_object(fs, exe_path);
  elf::Object merged;
  merged.kind = elf::ObjectKind::Executable;
  merged.machine = exe.machine;
  // No interpreter, no dynamic section: nothing for ld.so to do.
  merged.interp.clear();
  merged.extra_size = exe.extra_size;

  std::set<std::string> defined;
  auto absorb = [&](const elf::Object& object) {
    for (const auto& sym : object.symbols) {
      if (!sym.defined) continue;  // resolved at link time
      if (sym.binding == elf::SymbolBinding::Local) continue;
      if (defined.insert(sym.name).second) {
        merged.symbols.push_back(sym);
      }
    }
    merged.extra_size += object.extra_size;
    // Approximate each object's metadata weight too.
    merged.extra_size += elf::serialize(object).size();
  };
  absorb(exe);
  for (const auto& path : closure_paths) {
    absorb(elf::read_object(fs, path));
  }
  // Any surviving undefined strong reference would have failed link_check;
  // weak undefined references resolve to null in a static image.
  result.image_size = merged.extra_size;
  result.merged = std::move(merged);
  result.ok = true;
  return result;
}

SystemCost estimate_system_cost(
    const std::vector<std::uint64_t>& binary_sizes,
    const std::vector<std::vector<std::size_t>>& binary_deps,
    const std::vector<std::uint64_t>& lib_sizes) {
  SystemCost cost;
  std::set<std::size_t> used_libs;
  for (std::size_t b = 0; b < binary_deps.size(); ++b) {
    const std::uint64_t own =
        b < binary_sizes.size() ? binary_sizes[b] : 0;
    cost.dynamic_bytes += own;
    std::uint64_t static_total = own;
    for (const std::size_t lib : binary_deps[b]) {
      used_libs.insert(lib);
      static_total += lib_sizes[lib];
    }
    cost.static_bytes += static_total;
  }
  for (const std::size_t lib : used_libs) {
    cost.dynamic_bytes += lib_sizes[lib];  // resident once, shared
  }
  return cost;
}

}  // namespace depchaos::loader
