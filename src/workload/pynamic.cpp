#include "depchaos/workload/pynamic.hpp"

#include "depchaos/elf/patcher.hpp"
#include "depchaos/support/rng.hpp"

namespace depchaos::workload {

PynamicApp generate_pynamic(vfs::FileSystem& fs, const PynamicConfig& config) {
  PynamicApp app;
  support::Rng rng(config.seed);

  std::vector<std::string> sonames;
  sonames.reserve(config.num_modules);
  for (std::size_t i = 0; i < config.num_modules; ++i) {
    sonames.push_back("libpynamic_module_" + std::to_string(i) + ".so");
  }

  // One directory per module: <root>/m<i>/lib.
  for (std::size_t i = 0; i < config.num_modules; ++i) {
    const std::string dir = config.root + "/m" + std::to_string(i) + "/lib";
    app.search_dirs.push_back(dir);

    std::vector<std::string> cross;
    for (std::size_t d = 0; d < config.avg_cross_deps; ++d) {
      // Cross-deps point at random earlier modules (keeps the graph acyclic
      // and makes them dedup cache hits during BFS).
      if (i == 0) break;
      cross.push_back(sonames[rng.below(i)]);
    }
    elf::Object module = elf::make_library(sonames[i], cross);
    module.symbols.push_back(elf::Symbol{
        "pynamic_module_" + std::to_string(i) + "_entry",
        elf::SymbolBinding::Global, true});
    elf::install_object(fs, dir + "/" + sonames[i], module);
    app.module_paths.push_back(dir + "/" + sonames[i]);
  }

  elf::Object exe = elf::make_executable(sonames, /*runpath=*/{},
                                         /*rpath=*/app.search_dirs);
  exe.extra_size = config.exe_extra_bytes;
  app.exe_path = config.root + "/bigexe";
  elf::install_object(fs, app.exe_path, exe);
  return app;
}

}  // namespace depchaos::workload
