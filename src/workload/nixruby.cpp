#include "depchaos/workload/nixruby.hpp"

#include <vector>

#include "depchaos/support/rng.hpp"

namespace depchaos::workload {

using pkg::nix::DrvKind;

RubyClosure generate_ruby_closure(const RubyClosureConfig& config) {
  RubyClosure out;
  auto& drvs = out.drvs;
  support::Rng rng(config.seed);

  // --- bootstrap stages (stage 0 ... stage N-1), each depending on the
  // previous: stdenv, gcc-wrapper, binutils-wrapper, glibc.
  std::vector<std::size_t> stage_stdenv;
  std::size_t prev_stdenv = drvs.add("bootstrap-tools.drv", DrvKind::Bootstrap);
  const std::size_t unpack =
      drvs.add("unpack-bootstrap-tools.sh", DrvKind::Script);
  (void)unpack;
  for (std::size_t s = 0; s < config.bootstrap_stages; ++s) {
    const std::string suffix = std::to_string(s);
    const std::size_t binutils = drvs.add(
        "bootstrap-stage" + suffix + "-binutils-wrapper-.drv",
        DrvKind::Bootstrap, {prev_stdenv});
    const std::size_t glibc =
        drvs.add("bootstrap-stage" + suffix + "-glibc-.drv",
                 DrvKind::Bootstrap, {prev_stdenv});
    const std::size_t gcc_wrapper = drvs.add(
        "bootstrap-stage" + suffix + "-gcc-wrapper-.drv", DrvKind::Bootstrap,
        {prev_stdenv, binutils, glibc});
    const std::size_t stdenv =
        drvs.add("bootstrap-stage" + suffix + "-stdenv-linux.drv",
                 DrvKind::Bootstrap, {gcc_wrapper, binutils, glibc});
    stage_stdenv.push_back(stdenv);
    prev_stdenv = stdenv;
  }
  const std::size_t stdenv_final =
      drvs.add("stdenv-linux.drv", DrvKind::Bootstrap, {prev_stdenv});

  // --- core toolchain packages: each gets a source tarball derivation and
  // a handful of patches, and depends on the final stdenv plus a few peers.
  struct CorePackage {
    const char* name;
    std::size_t patches;
  };
  static constexpr CorePackage kCore[] = {
      {"gcc-10.3.0.drv", 3},        {"glibc-2.33-56.drv", 9},
      {"binutils-2.35.2.drv", 7},   {"perl-5.34.0.drv", 2},
      {"openssl-1.1.1l.drv", 2},    {"zlib-1.2.11.drv", 0},
      {"ncurses-6.2.drv", 1},       {"readline-6.3p08.drv", 8},
      {"libffi-3.4.2.drv", 0},      {"libyaml-0.2.5.drv", 0},
      {"gdbm-1.20.drv", 0},         {"autoconf-2.71.drv", 2},
      {"automake-1.16.3.drv", 1},   {"libtool-2.4.6.drv", 1},
      {"pkg-config-0.29.2.drv", 1}, {"bison-3.8.2.drv", 0},
      {"gnum4-1.4.19.drv", 0},      {"groff-1.22.4.drv", 1},
      {"texinfo-6.8.drv", 0},       {"curl-7.79.1.drv", 1},
      {"nghttp2-1.43.0.drv", 0},    {"libssh2-1.10.0.drv", 0},
      {"libkrb5-1.18.drv", 0},      {"keyutils-1.6.3.drv", 1},
      {"coreutils-9.0.drv", 2},     {"findutils-4.8.0.drv", 1},
      {"diffutils-3.8.drv", 0},     {"gnused-4.8.drv", 0},
      {"gnugrep-3.7.drv", 0},       {"gawk-5.1.1.drv", 0},
      {"gnutar-1.34.drv", 0},       {"gzip-1.11.drv", 0},
      {"bzip2-1.0.6.0.2.drv", 2},   {"xz-5.2.5.drv", 0},
      {"bash-5.1-p12.drv", 12},     {"gnumake-4.3.drv", 2},
      {"patch-2.7.6.drv", 6},       {"patchelf-0.13.drv", 1},
      {"expat-2.4.1.drv", 0},       {"gettext-0.21.drv", 1},
      {"gmp-6.2.1.drv", 0},         {"mpfr-4.1.0.drv", 0},
      {"libmpc-1.2.1.drv", 0},      {"isl-0.20.drv", 0},
      {"libelf-0.8.13.drv", 2},     {"pcre-8.44.drv", 1},
      {"libidn2-2.3.2.drv", 0},     {"libunistring-0.9.10.drv", 0},
      {"unzip-6.0.drv", 11},        {"which-2.21.drv", 0},
      {"help2man-1.48.5.drv", 0},   {"python3-minimal-3.9.6.drv", 5},
      {"rubygems.drv", 3},
  };

  const std::size_t mirrors = drvs.add("mirrors-list.drv", DrvKind::Script);
  std::vector<std::size_t> core_ids;
  for (const auto& core : kCore) {
    const std::string base(core.name);
    const std::size_t src =
        drvs.add(base.substr(0, base.size() - 4) + ".tar.gz.drv",
                 DrvKind::Source, {mirrors});
    std::vector<std::size_t> inputs = {stdenv_final, src};
    for (std::size_t p = 0; p < core.patches; ++p) {
      inputs.push_back(drvs.add(base.substr(0, base.size() - 4) + "-patch-" +
                                    std::to_string(p) + ".patch.drv",
                                DrvKind::Source));
    }
    // A few peer dependencies among earlier core packages.
    const std::size_t peers = rng.below(4);
    for (std::size_t p = 0; p < peers && !core_ids.empty(); ++p) {
      inputs.push_back(core_ids[rng.below(core_ids.size())]);
    }
    core_ids.push_back(drvs.add(base, DrvKind::Package, inputs));
  }

  // --- ruby root: source + rubygems patches + a wide slice of core.
  std::vector<std::size_t> ruby_inputs = {stdenv_final};
  ruby_inputs.push_back(
      drvs.add("ruby-2.7.5.tar.gz.drv", DrvKind::Source, {mirrors}));
  for (const std::size_t id : core_ids) ruby_inputs.push_back(id);
  out.root = drvs.add("ruby-2.7.5.drv", DrvKind::Package, ruby_inputs);

  // --- pad with setup-hook scripts attached to random core packages until
  // the closure hits the target size. Hooks are inputs of their package, so
  // attaching one to a closure member grows the closure by exactly one.
  std::size_t closure_size = drvs.closure(out.root).size();
  std::size_t hook_counter = 0;
  while (closure_size < config.target_nodes) {
    const std::size_t owner = core_ids[rng.below(core_ids.size())];
    const std::size_t hook = drvs.add(
        "setup-hook-" + std::to_string(hook_counter++) + ".sh.drv",
        DrvKind::Script);
    drvs.add_input(owner, hook);
    ++closure_size;
  }
  return out;
}

}  // namespace depchaos::workload
