#include "depchaos/workload/scenarios.hpp"

#include "depchaos/elf/patcher.hpp"
#include "depchaos/shrinkwrap/shrinkwrap.hpp"

namespace depchaos::workload {

RocmScenario make_rocm_scenario(vfs::FileSystem& fs) {
  RocmScenario scenario;
  scenario.good_lib_dir = "/opt/rocm-4.5/lib";
  scenario.bad_lib_dir = "/opt/rocm-4.3/lib";

  // Internal library in both prefixes; version marker symbols differ.
  for (const auto& [dir, marker] :
       {std::pair{scenario.good_lib_dir, std::string("rocm_version_4_5")},
        std::pair{scenario.bad_lib_dir, std::string("rocm_version_4_3")}}) {
    elf::Object internal = elf::make_library("librocm-internal.so");
    internal.symbols.push_back(
        elf::Symbol{marker, elf::SymbolBinding::Global, true});
    elf::install_object(fs, dir + "/librocm-internal.so", internal);

    // The ROCm packages ship with RUNPATH (the paper's factor #3).
    elf::Object core =
        elf::make_library("librocm-core.so", {"librocm-internal.so"},
                          /*runpath=*/{dir});
    elf::install_object(fs, dir + "/librocm-core.so", core);
  }

  // Application built against 4.5 with RPATH to it (factor #1).
  elf::Object exe = elf::make_executable({"librocm-core.so"},
                                         /*runpath=*/{},
                                         /*rpath=*/{scenario.good_lib_dir});
  scenario.exe_path = "/apps/gpu_sim/bin/gpu_sim";
  elf::install_object(fs, scenario.exe_path, exe);

  // Factor #2: the module for the OTHER ROCm version sets LD_LIBRARY_PATH.
  scenario.wrong_module_env.ld_library_path = {scenario.bad_lib_dir};
  return scenario;
}

bool rocm_versions_mixed(const loader::LoadReport& report,
                         const RocmScenario& scenario) {
  bool saw_good = false, saw_bad = false;
  for (const auto& obj : report.load_order) {
    if (obj.path.starts_with(scenario.good_lib_dir)) saw_good = true;
    if (obj.path.starts_with(scenario.bad_lib_dir)) saw_bad = true;
  }
  return saw_good && saw_bad;
}

SambaScenario make_samba_scenario(vfs::FileSystem& fs) {
  SambaScenario scenario;
  const std::string priv = "/usr/lib/samba";  // private samba lib dir
  scenario.rescued_soname = "libsamba-debug-samba4.so";

  auto lib_with_runpath = [&](const std::string& soname,
                              std::vector<std::string> needed) {
    elf::Object lib =
        elf::make_library(soname, std::move(needed), /*runpath=*/{priv});
    elf::install_object(fs, priv + "/" + soname, lib);
    return priv + "/" + soname;
  };

  // Public sonames live in the default path; private ones only in `priv`.
  auto lib_in_default = [&](const std::string& soname) {
    elf::Object lib = elf::make_library(soname);
    elf::install_object(fs, "/usr/lib/" + soname, lib);
  };
  lib_in_default("libsamba-util.so.0");
  lib_in_default("libtalloc.so.2");
  lib_in_default("libsamba-errors.so.1");
  lib_in_default("libpopt.so.0");
  lib_in_default("libsmbconf.so.0");

  lib_with_runpath(scenario.rescued_soname, {});
  lib_with_runpath("libutil-tdb-samba4.so", {scenario.rescued_soname});
  lib_with_runpath("libdbwrap-samba4.so",
                   {"libutil-tdb-samba4.so", scenario.rescued_soname});

  // The odd one out: built WITHOUT any runpath (Listing 1's culprit).
  {
    elf::Object modules = elf::make_library(
        "libsamba-modules-samba4.so",
        {"libsamba-util.so.0", "libtalloc.so.2", "libsamba-errors.so.1",
         scenario.rescued_soname});
    scenario.no_runpath_lib = priv + "/libsamba-modules-samba4.so";
    elf::install_object(fs, scenario.no_runpath_lib, modules);
  }

  lib_with_runpath("libgensec-samba4.so", {"libsamba-modules-samba4.so"});
  lib_with_runpath("libsamba-sockets-samba4.so", {"libgensec-samba4.so"});
  lib_with_runpath("libsmb-transport-samba4.so",
                   {"libsamba-sockets-samba4.so"});
  lib_with_runpath("libiov-buf-samba4.so", {"libsmb-transport-samba4.so"});
  lib_with_runpath("libcli-smb-common-samba4.so",
                   {"libiov-buf-samba4.so", "libsmb-transport-samba4.so"});
  lib_with_runpath("libpopt-samba3-samba4.so",
                   {"libpopt.so.0", "libcli-smb-common-samba4.so"});

  // dbwrap_tool: note libdbwrap (whose subtree loads the rescued library
  // via runpath) is requested BEFORE the gensec subtree reaches the
  // runpath-less modules library; BFS order makes the rescue work.
  elf::Object exe = elf::make_executable(
      {"libpopt-samba3-samba4.so", "libdbwrap-samba4.so",
       "libutil-tdb-samba4.so", "libcli-smb-common-samba4.so",
       "libsmbconf.so.0", "libsamba-util.so.0"},
      /*runpath=*/{priv});
  scenario.exe_path = "/usr/bin/dbwrap_tool";
  elf::install_object(fs, scenario.exe_path, exe);
  return scenario;
}

OmpScenario make_ompstubs_scenario(vfs::FileSystem& fs, bool stubs_first) {
  OmpScenario scenario;
  scenario.probe_symbol = "omp_get_num_threads";
  const std::string dir = "/opt/compiler/lib";

  auto omp_like = [&](const std::string& soname, const std::string& flavor) {
    elf::Object lib = elf::make_library(soname);
    for (const char* symbol :
         {"omp_get_num_threads", "omp_get_thread_num", "omp_set_num_threads",
          "GOMP_parallel"}) {
      lib.symbols.push_back(
          elf::Symbol{symbol, elf::SymbolBinding::Global, true});
    }
    lib.symbols.push_back(
        elf::Symbol{"omp_flavor_" + flavor, elf::SymbolBinding::Global, true});
    elf::install_object(fs, dir + "/" + soname, lib);
    return dir + "/" + soname;
  };
  scenario.libomp_path = omp_like("libomp.so", "real");
  scenario.stubs_path = omp_like("libompstubs.so", "stubs");

  std::vector<std::string> needed =
      stubs_first ? std::vector<std::string>{"libompstubs.so", "libomp.so"}
                  : std::vector<std::string>{"libomp.so", "libompstubs.so"};
  elf::Object exe = elf::make_executable(std::move(needed), /*runpath=*/{},
                                         /*rpath=*/{dir});
  exe.symbols.push_back(elf::Symbol{scenario.probe_symbol,
                                    elf::SymbolBinding::Global, false});
  scenario.exe_path = "/apps/omp_app/bin/omp_app";
  elf::install_object(fs, scenario.exe_path, exe);
  return scenario;
}

ParadoxScenario make_runpath_paradox(vfs::FileSystem& fs) {
  ParadoxScenario scenario;
  scenario.dir_a = "/opt/paradox/dirA";
  scenario.dir_b = "/opt/paradox/dirB";

  auto lib = [&](const std::string& dir, const std::string& soname,
                 bool good) {
    elf::Object object = elf::make_library(soname);
    object.symbols.push_back(elf::Symbol{
        soname.substr(0, soname.find('.')) + (good ? "_good" : "_bad"),
        elf::SymbolBinding::Global, true});
    elf::install_object(fs, dir + "/" + soname, object);
    return dir + "/" + soname;
  };
  scenario.good_a_path = lib(scenario.dir_a, "liba.so", true);
  lib(scenario.dir_a, "libb.so", false);
  lib(scenario.dir_b, "liba.so", false);
  scenario.good_b_path = lib(scenario.dir_b, "libb.so", true);

  elf::Object exe =
      elf::make_executable({"liba.so", "libb.so"},
                           /*runpath=*/{scenario.dir_a, scenario.dir_b});
  scenario.exe_path = "/opt/paradox/bin/app";
  elf::install_object(fs, scenario.exe_path, exe);
  return scenario;
}

bool paradox_satisfied(const loader::LoadReport& report,
                       const ParadoxScenario& scenario) {
  const auto* a = report.find_loaded("liba.so");
  const auto* b = report.find_loaded("libb.so");
  return a != nullptr && b != nullptr && a->path == scenario.good_a_path &&
         b->path == scenario.good_b_path;
}

void set_paradox_search_order(vfs::FileSystem& fs,
                              const ParadoxScenario& scenario,
                              const std::vector<std::string>& dirs) {
  elf::Patcher patcher(fs);
  patcher.set_runpath(scenario.exe_path, dirs);
}

namespace {

/// The shared app-image layout: tool -> libapp -> libdeps, with $ORIGIN
/// search paths so the image works wherever it is mounted.
/// `bundled_runpath` decides whether libapp prefers its bundled sibling
/// (AppDir style — what lets a stale image shadow a patched host copy) or
/// carries no search paths at all (the classic culprit that lets a host
/// library leak in through the system search).
std::shared_ptr<vfs::FileSystem> make_app_image(const std::string& deps_marker,
                                                bool bundled_runpath) {
  auto image = std::make_shared<vfs::FileSystem>();
  elf::Object deps = elf::make_library("libdeps.so");
  deps.symbols.push_back(
      elf::Symbol{deps_marker, elf::SymbolBinding::Global, true});
  elf::install_object(*image, "/lib/libdeps.so", deps);
  elf::install_object(
      *image, "/lib/libapp.so",
      elf::make_library("libapp.so", {"libdeps.so"},
                        bundled_runpath ? std::vector<std::string>{"$ORIGIN"}
                                        : std::vector<std::string>{}));
  elf::install_object(
      *image, "/bin/tool",
      elf::make_executable({"libapp.so"}, /*runpath=*/{"$ORIGIN/../lib"}));
  return image;
}

const elf::Object* find_object(const loader::LoadReport& report,
                               std::string_view soname) {
  const auto* loaded = report.find_loaded(soname);
  return loaded != nullptr ? loaded->object.get() : nullptr;
}

}  // namespace

ContainerLeakScenario make_container_leak_scenario(vfs::FileSystem& host) {
  ContainerLeakScenario scenario;
  scenario.image_mount = "/app";
  scenario.exe = "/app/bin/tool";
  scenario.host_lib_dir = "/usr/lib";
  scenario.leak_soname = "libdeps.so";
  scenario.image_marker = "libdeps_image_v2";
  scenario.host_marker = "libdeps_host_v1";
  scenario.image = make_app_image(scenario.image_marker,
                                  /*bundled_runpath=*/false);

  // The host's stale system copy — same soname, older symbol surface.
  elf::Object stale = elf::make_library("libdeps.so");
  stale.symbols.push_back(
      elf::Symbol{scenario.host_marker, elf::SymbolBinding::Global, true});
  elf::install_object(host, scenario.host_lib_dir + "/libdeps.so", stale);

  // Container ld.so.conf: the host dir is listed (and scanned) before the
  // app dir — the misconfiguration the mask has to paper over.
  scenario.search.ld_so_conf = {scenario.host_lib_dir,
                                scenario.image_mount + "/lib"};
  return scenario;
}

bool container_host_leaked(const loader::LoadReport& report,
                           const ContainerLeakScenario& scenario) {
  const elf::Object* deps = find_object(report, scenario.leak_soname);
  return deps != nullptr && deps->defines_strong(scenario.host_marker);
}

ContainerLaunchScenario make_container_launch_scenario(
    const PynamicConfig& config) {
  ContainerLaunchScenario scenario;
  scenario.image_mount = "/";  // the image is the container's own rootfs
  {
    vfs::FileSystem world;
    scenario.app = generate_pynamic(world, config);
    scenario.exe = scenario.app.exe_path;
    scenario.image = std::make_shared<vfs::FileSystem>(std::move(world));
  }
  {
    // Same deterministic generation, then shrinkwrap IN the image world:
    // the frozen absolute DT_NEEDED entries are valid wherever this rootfs
    // is mounted as "/".
    vfs::FileSystem world;
    (void)generate_pynamic(world, config);
    loader::Loader loader(world);
    if (!shrinkwrap::shrinkwrap(world, loader, scenario.exe, {}).ok()) {
      throw Error("container launch scenario: shrinkwrap failed for " +
                  scenario.exe);
    }
    scenario.wrapped_image = std::make_shared<vfs::FileSystem>(
        std::move(world));
  }
  return scenario;
}

int mpmd_class_of(int rank, int classes) {
  if (classes < 1) return 0;
  return rank % classes;
}

void apply_mpmd_rank(vfs::FileSystem& fs, loader::Environment& env,
                     const PynamicApp& app, int rank, int classes) {
  const int cls = mpmd_class_of(rank, classes);
  if (cls == 0 || app.module_paths.size() < 2 || app.search_dirs.empty()) {
    return;  // class 0: the app exactly as shipped
  }
  // Shadow `cls` distinct modules into the app's FIRST search directory:
  // the loader binds the overlay copy — a rank-private hit plus shortened
  // probe chains, so each class's measured stream genuinely differs.
  // Victims stride through the module list so classes never pick the same
  // set (module 0 is skipped: its own dir IS the first search dir).
  const std::size_t candidates = app.module_paths.size() - 1;
  for (int i = 0; i < cls; ++i) {
    const std::size_t victim =
        1 + (static_cast<std::size_t>(cls) * 13 +
             static_cast<std::size_t>(i) * 7) %
                candidates;
    const std::string soname = vfs::basename(app.module_paths[victim]);
    elf::install_object(fs, app.search_dirs.front() + "/" + soname,
                        elf::make_library(soname));
  }
  // Plus `cls` class-unique (empty, but real) library directories at the
  // head of the search environment: every unresolved probe walks them
  // first, so the environment half of the equivalence key carries weight
  // of its own.
  for (int i = cls - 1; i >= 0; --i) {
    const std::string dir = "/opt/mpmd/class" + std::to_string(cls) +
                            "/extra" + std::to_string(i);
    fs.mkdir_p(dir);
    env.ld_library_path.insert(env.ld_library_path.begin(), dir);
  }
}

StaleImageScenario make_stale_image_scenario(vfs::FileSystem& host) {
  StaleImageScenario scenario;
  scenario.image_mount = "/app";
  scenario.exe = "/app/bin/tool";
  scenario.lib_soname = "libdeps.so";
  scenario.stale_marker = "libdeps_vulnerable_v1";
  scenario.fresh_marker = "libdeps_patched_v2";
  scenario.stale_image =
      make_app_image(scenario.stale_marker, /*bundled_runpath=*/true);
  scenario.fresh_image =
      make_app_image(scenario.fresh_marker, /*bundled_runpath=*/true);

  // The host's system copy has already been patched — but the image's
  // $ORIGIN runpath shadows it for anything inside the container.
  elf::Object patched = elf::make_library("libdeps.so");
  patched.symbols.push_back(
      elf::Symbol{scenario.fresh_marker, elf::SymbolBinding::Global, true});
  elf::install_object(host, "/usr/lib/libdeps.so", patched);
  return scenario;
}

bool stale_library_loaded(const loader::LoadReport& report,
                          const StaleImageScenario& scenario) {
  const elf::Object* deps = find_object(report, scenario.lib_soname);
  return deps != nullptr && deps->defines_strong(scenario.stale_marker);
}

QtPluginScenario make_qt_plugin_scenario(vfs::FileSystem& fs, bool use_rpath) {
  QtPluginScenario scenario;
  const std::string qt_dir = "/opt/qt/lib";
  scenario.plugin_dir = "/opt/app/plugins";
  scenario.plugin_soname = "libqsqlite_plugin.so";

  elf::install_object(fs, scenario.plugin_dir + "/" + scenario.plugin_soname,
                      elf::make_library(scenario.plugin_soname));

  // libqtgui has no search paths of its own — the Qt blog scenario.
  elf::Object gui = elf::make_library("libqtgui.so");
  scenario.gui_lib_path = qt_dir + "/libqtgui.so";
  elf::install_object(fs, scenario.gui_lib_path, gui);

  std::vector<std::string> search = {qt_dir, scenario.plugin_dir};
  elf::Object exe = elf::make_executable(
      {"libqtgui.so"},
      /*runpath=*/use_rpath ? std::vector<std::string>{} : search,
      /*rpath=*/use_rpath ? search : std::vector<std::string>{});
  scenario.exe_path = "/opt/app/bin/app";
  elf::install_object(fs, scenario.exe_path, exe);
  return scenario;
}

}  // namespace depchaos::workload
