#include "depchaos/workload/emacs.hpp"

#include "depchaos/elf/patcher.hpp"
#include "depchaos/support/rng.hpp"

namespace depchaos::workload {

EmacsApp generate_emacs_like(vfs::FileSystem& fs, const EmacsConfig& config) {
  EmacsApp app;
  support::Rng rng(config.seed);

  // Store-style hashed directories, e.g. /nix/store/ab12…-dep7/lib.
  for (std::size_t d = 0; d < config.num_dirs; ++d) {
    app.search_dirs.push_back(config.root + "/w" + std::to_string(d) +
                              "-emacs-dep-dir/lib");
  }

  std::vector<std::string> sonames;
  for (std::size_t i = 0; i < config.num_deps; ++i) {
    const std::string soname = "libemacsdep" + std::to_string(i) + ".so";
    sonames.push_back(soname);
    const std::string& dir = app.search_dirs[rng.below(config.num_dirs)];
    std::vector<std::string> cross;
    for (std::size_t c = 0; c < config.cross_deps && i > 0; ++c) {
      cross.push_back(sonames[rng.below(i)]);  // earlier lib: acyclic
    }
    elf::Object lib = elf::make_library(soname, cross);
    elf::install_object(fs, dir + "/" + soname, lib);
    app.lib_paths.push_back(dir + "/" + soname);
  }

  elf::Object exe = elf::make_executable(sonames, /*runpath=*/app.search_dirs);
  app.exe_path = config.root + "/w-emacs/bin/emacs";
  elf::install_object(fs, app.exe_path, exe);
  return app;
}

}  // namespace depchaos::workload
