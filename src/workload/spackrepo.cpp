#include "depchaos/workload/spackrepo.hpp"

#include "depchaos/support/rng.hpp"

namespace depchaos::workload {

std::vector<std::string> core_hpc_recipes() {
  return {
      R"PY(
class Cmake(Package):
    homepage = "https://cmake.org"
    version("3.23.1")
    version("3.22.2")
    depends_on("openssl")
    depends_on("ncurses")
)PY",
      R"PY(
class Openssl(Package):
    version("1.1.1q")
    depends_on("zlib")
    depends_on("perl", type=("build",))
)PY",
      R"PY(
class Zlib(Package):
    version("1.2.12")
    version("1.2.11", deprecated=True)
    variant("shared", default=True, description="Build shared library")
)PY",
      R"PY(
class Ncurses(Package):
    version("6.2")
)PY",
      R"PY(
class Perl(Package):
    version("5.34.1")
    depends_on("gdbm")
)PY",
      R"PY(
class Gdbm(Package):
    version("1.21")
)PY",
      R"PY(
class Hwloc(Package):
    version("2.7.1")
    variant("libxml2", default=False, description="XML topology export")
    depends_on("libxml2", when="+libxml2")
)PY",
      R"PY(
class Libxml2(Package):
    version("2.9.13")
    depends_on("zlib")
)PY",
      R"PY(
class Libevent(Package):
    version("2.1.12")
    depends_on("openssl")
)PY",
      R"PY(
class Openmpi(Package):
    homepage = "https://www.open-mpi.org"
    version("4.1.3")
    version("4.0.7")
    provides("mpi")
    depends_on("hwloc")
    depends_on("libevent")
    depends_on("zlib")
)PY",
      R"PY(
class Mvapich2(Package):
    version("2.3.7")
    provides("mpi")
    depends_on("hwloc")
)PY",
      R"PY(
class Hdf5(Package):
    homepage = "https://www.hdfgroup.org"
    version("1.12.2")
    version("1.10.8")
    variant("mpi", default=True, description="Parallel HDF5")
    variant("shared", default=True, description="Shared libs")
    depends_on("zlib")
    depends_on("mpi", when="+mpi")
    depends_on("cmake", type=("build",))
)PY",
      R"PY(
class Conduit(Package):
    version("0.8.3")
    variant("mpi", default=True, description="MPI support")
    variant("hdf5", default=True, description="HDF5 I/O")
    depends_on("hdf5@1.10:+shared", when="+hdf5")
    depends_on("mpi", when="+mpi")
    depends_on("cmake", type=("build",))
)PY",
      R"PY(
class Camp(Package):
    version("2022.3.0")
    depends_on("cmake", type=("build",))
)PY",
      R"PY(
class Raja(Package):
    version("2022.3.0")
    version("0.14.0")
    variant("openmp", default=True, description="OpenMP backend")
    depends_on("camp")
    depends_on("cmake", type=("build",))
)PY",
      R"PY(
class Umpire(Package):
    version("2022.3.0")
    depends_on("camp")
    depends_on("cmake", type=("build",))
)PY",
      R"PY(
class Metis(Package):
    version("5.1.0")
)PY",
      R"PY(
class Hypre(Package):
    version("2.24.0")
    variant("mpi", default=True, description="MPI")
    depends_on("mpi", when="+mpi")
)PY",
      R"PY(
class Mfem(Package):
    version("4.4.0")
    variant("mpi", default=True, description="Parallel")
    depends_on("mpi", when="+mpi")
    depends_on("hypre", when="+mpi")
    depends_on("metis")
    depends_on("zlib")
)PY",
      R"PY(
class Python(Package):
    version("3.9.12")
    depends_on("openssl")
    depends_on("zlib")
    depends_on("ncurses")
    depends_on("gdbm")
)PY",
      R"PY(
class PyNumpy(Package):
    version("1.22.3")
    depends_on("python")
)PY",
      R"PY(
class Lua(Package):
    version("5.4.4")
    depends_on("ncurses")
)PY",
      R"PY(
class Axom(CMakePackage):
    """Axom provides robust software components for HPC applications —
    the paper's motivating 200+-dependency package."""
    homepage = "https://github.com/LLNL/axom"
    version("0.7.0")
    version("0.6.1")
    variant("mpi", default=True, description="MPI support")
    variant("python", default=True, description="Python bindings")
    variant("openmp", default=True, description="OpenMP")
    depends_on("cmake", type=("build",))
    depends_on("conduit+hdf5")
    depends_on("hdf5@1.10:")
    depends_on("raja+openmp", when="+openmp")
    depends_on("raja~openmp", when="~openmp")
    depends_on("umpire")
    depends_on("camp")
    depends_on("mfem")
    depends_on("mpi", when="+mpi")
    depends_on("python", when="+python")
    depends_on("py-numpy", when="+python")
    depends_on("lua")
)PY",
  };
}

std::vector<std::string> synthetic_recipes(const SyntheticRepoConfig& config) {
  support::Rng rng(config.seed);
  std::vector<std::string> out;
  out.reserve(config.num_packages);
  for (std::size_t i = 0; i < config.num_packages; ++i) {
    std::string src = "class Synth" + std::to_string(i) + "(Package):\n";
    src += "    \"\"\"synthetic support library #" + std::to_string(i) +
           "\"\"\"\n";
    const int minor = static_cast<int>(rng.below(20));
    src += "    version(\"1." + std::to_string(minor) + "\")\n";
    if (rng.chance(0.5)) {
      src += "    version(\"1." + std::to_string(minor / 2) + "\")\n";
    }
    const bool has_variant = rng.chance(0.4);
    if (has_variant) {
      src += "    variant(\"extras\", default=" +
             std::string(rng.chance(0.5) ? "True" : "False") +
             ", description=\"optional bits\")\n";
    }
    const std::size_t deps = i == 0 ? 0 : rng.below(config.max_deps + 1);
    for (std::size_t d = 0; d < deps; ++d) {
      const std::size_t target = rng.below(i);
      src += "    depends_on(\"synth" + std::to_string(target) + "\"";
      if (has_variant && rng.chance(config.when_fraction)) {
        src += ", when=\"+extras\"";
      }
      src += ")\n";
    }
    out.push_back(std::move(src));
  }
  return out;
}

spack::Repo build_hpc_repo(const SyntheticRepoConfig& config) {
  spack::Repo repo;
  for (const auto& source : core_hpc_recipes()) {
    repo.add_package_py(source);
  }
  for (const auto& source : synthetic_recipes(config)) {
    repo.add_package_py(source);
  }
  // Give axom the paper-scale fan-out: it (transitively, through a shim
  // package) pulls a slice of the synthetic layer, the way a real Axom
  // build pulls in py-*, tool, and TPL packages.
  if (config.num_packages > 0) {
    std::string shim =
        "class AxomTpls(Package):\n"
        "    \"\"\"third-party-library bundle for axom\"\"\"\n"
        "    version(\"1.0\")\n";
    const std::size_t stride = 2;
    for (std::size_t i = config.num_packages - 1; i > 0; i -= stride) {
      shim += "    depends_on(\"synth" + std::to_string(i) + "\")\n";
      if (i < stride) break;
    }
    repo.add_package_py(shim);

    // Extend axom itself: re-parse its recipe and append the shim dep.
    spack::Recipe axom = spack::parse_package_py(core_hpc_recipes().back());
    spack::DependsDecl extra;
    extra.spec = spack::Spec::parse("axom-tpls");
    extra.types = {"build", "link"};
    axom.dependencies.push_back(extra);
    repo.add(std::move(axom));
  }
  return repo;
}

}  // namespace depchaos::workload
