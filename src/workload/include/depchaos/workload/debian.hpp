// Debian-ecosystem synthesizers for Fig 1 and Fig 4.
//
// Fig 1: a 209k-package archive where "nearly 3/4 use completely
// unversioned dependency specifications". The generator emits control-file
// text with the archive's statistical mix; the analyzer REPARSES it with the
// real parser, so the measured bars come out of the same machinery a real
// archive would go through.
//
// Fig 4: a desktop install with 3,287 binaries whose shared-object reuse is
// sharply heavy-tailed — "only 4% of shared object files are used by more
// than 5% of the binaries". Reuse follows a Zipf law (libc at rank 0,
// one-off plugin libs in the tail).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "depchaos/analysis/histogram.hpp"
#include "depchaos/pkg/deb.hpp"
#include "depchaos/vfs/vfs.hpp"

namespace depchaos::workload {

struct DebianCorpusConfig {
  std::size_t num_packages = 209000;
  /// Per-dependency spec-kind mix (Fig 1's measured proportions).
  double frac_unversioned = 0.735;
  double frac_range = 0.248;  // remainder is Exact
  /// Dependencies per package: uniform in [min_deps, max_deps].
  std::size_t min_deps = 0;
  std::size_t max_deps = 7;
  /// Curated archives (the Debian reality of §II-A) generate version
  /// constraints that the target package's actual version satisfies;
  /// `broken_fraction` of dependencies are deliberately made unsatisfiable
  /// (the regressions maintainers catch), which the consistency checker in
  /// pkg::deb must find.
  double broken_fraction = 0.0;
  std::uint64_t seed = 0xdeb1a2;
};

/// Generate the archive metadata (packages + dependency specs).
std::vector<pkg::deb::Package> generate_debian_corpus(
    const DebianCorpusConfig& config);

/// Render to control-file text (feed back through pkg::deb::parse_control).
std::string corpus_to_control_text(const std::vector<pkg::deb::Package>& pkgs);

struct InstalledSystemConfig {
  std::size_t num_binaries = 3287;
  std::size_t num_shared_objects = 1400;
  /// Zipf exponent for library popularity; calibrated so the >5%-of-binaries
  /// club is ~4% of objects.
  double zipf_s = 0.84;
  std::size_t min_deps = 2;
  std::size_t max_deps = 38;
  std::uint64_t seed = 0xdeb0405;
};

struct InstalledSystem {
  /// binary_deps[b] = indices of shared objects binary b links against.
  std::vector<std::vector<std::size_t>> binary_deps;
  std::size_t num_shared_objects = 0;
};

InstalledSystem generate_installed_system(const InstalledSystemConfig& config);

/// Fig 4: per-shared-object count of binaries using it.
analysis::Histogram reuse_histogram(const InstalledSystem& system);

/// Optionally materialize the system into a VFS as an FHS tree
/// (/usr/bin/bin<i>, /usr/lib/libso<j>.so) for integration tests.
void materialize_installed_system(vfs::FileSystem& fs,
                                  const InstalledSystem& system);

}  // namespace depchaos::workload
