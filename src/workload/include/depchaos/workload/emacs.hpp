// emacs-as-built-by-Nix workload (Table II).
//
// "the emacs editor, as built by Nix, lists 36 directories in its RUNPATH
// and requires 103 dependencies to be resolved" — the dynamic linker could
// attempt nearly 3,600 filesystem operations; strace measured 1,823
// stat/openat calls, dropping to 104 after shrinkwrapping.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "depchaos/vfs/vfs.hpp"

namespace depchaos::workload {

struct EmacsConfig {
  std::size_t num_deps = 103;
  std::size_t num_dirs = 36;
  /// Cross-edges between dependency libraries (bare-soname requests that the
  /// loader satisfies from the dedup cache — Fig 5's mechanism). They do not
  /// change the stat/openat counts because cache hits are free.
  std::size_t cross_deps = 2;
  std::string root = "/nix/store";
  std::uint64_t seed = 0xe1ac5;
};

struct EmacsApp {
  std::string exe_path;
  std::vector<std::string> search_dirs;
  std::vector<std::string> lib_paths;
};

/// Build an emacs-shaped binary: `num_deps` direct needed entries spread
/// uniformly across `num_dirs` store directories listed in the executable's
/// RUNPATH.
EmacsApp generate_emacs_like(vfs::FileSystem& fs, const EmacsConfig& config);

}  // namespace depchaos::workload
