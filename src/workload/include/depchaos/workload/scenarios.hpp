// Scenario builders for the paper's concrete failure cases.
//
//  * ROCm three-factor failure (§V-B.1): RPATH on the executable +
//    LD_LIBRARY_PATH from a different ROCm module + RUNPATH inside the ROCm
//    libraries => internal libraries of the WRONG version get loaded.
//  * samba/dbwrap_tool (Listing 1): a library four levels down has no
//    RUNPATH; its dependency resolves only because an earlier subtree
//    already loaded it.
//  * libomp/libompstubs (§V-B.2): two drop-in libraries defining the same
//    strong symbols; load order decides behaviour; the link line rejects
//    them together.
//  * RUNPATH paradox (Fig 3): no single search-path ordering can pick
//    dirA/liba.so AND dirB/libb.so.
//  * Qt plugin trap (§III-A): dlopen from inside a library sees RPATH
//    ancestry but not the executable's RUNPATH.
//  * Container mount-stacking failures (deployment substrate, §V): a host
//    library leaking through an unmasked /usr/lib into a containerized
//    app's search, and a stale squashfs image shadowing a patched host
//    library. Both are driven through vfs mount tables /
//    core::Session::sandbox.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "depchaos/loader/loader.hpp"
#include "depchaos/vfs/vfs.hpp"
#include "depchaos/workload/pynamic.hpp"

namespace depchaos::workload {

struct RocmScenario {
  std::string exe_path;
  std::string good_lib_dir;  // /opt/rocm-4.5/lib
  std::string bad_lib_dir;   // /opt/rocm-4.3/lib
  /// Environment with the WRONG module loaded (LD_LIBRARY_PATH -> 4.3).
  loader::Environment wrong_module_env;
  loader::Environment clean_env;
};

/// Build the ROCm layout. The application was built against 4.5; the
/// internal library carries a version marker symbol (rocm_version_4_5 /
/// rocm_version_4_3) so tests can detect a mixed load.
RocmScenario make_rocm_scenario(vfs::FileSystem& fs);

/// True when the load mixed libraries from both ROCm prefixes — the
/// "segfault" condition of §V-B.1.
bool rocm_versions_mixed(const loader::LoadReport& report,
                         const RocmScenario& scenario);

struct SambaScenario {
  std::string exe_path;  // /usr/bin/dbwrap_tool
  /// The library that has no RUNPATH of its own.
  std::string no_runpath_lib;  // libsamba-modules-samba4.so
  /// Its dependency that is only found via an earlier load.
  std::string rescued_soname;  // libsamba-debug-samba4.so
};

SambaScenario make_samba_scenario(vfs::FileSystem& fs);

struct OmpScenario {
  std::string exe_path;
  std::string libomp_path;
  std::string stubs_path;
  std::string probe_symbol;  // defined strong by BOTH libraries
};

/// `stubs_first` controls the user's link order (the paper's hazard:
/// whichever loads first wins).
OmpScenario make_ompstubs_scenario(vfs::FileSystem& fs,
                                   bool stubs_first = false);

struct ParadoxScenario {
  std::string exe_path;
  std::string dir_a;  // wants liba.so from here
  std::string dir_b;  // wants libb.so from here
  std::string good_a_path;
  std::string good_b_path;
};

ParadoxScenario make_runpath_paradox(vfs::FileSystem& fs);

/// Did the load pick BOTH intended libraries? (Impossible with any single
/// directory-order search; trivial after Shrinkwrap.)
bool paradox_satisfied(const loader::LoadReport& report,
                       const ParadoxScenario& scenario);

/// Re-point the executable's RUNPATH at the given directory order (Fig 3's
/// exhaustive enumeration helper).
void set_paradox_search_order(vfs::FileSystem& fs,
                              const ParadoxScenario& scenario,
                              const std::vector<std::string>& dirs);

struct QtPluginScenario {
  std::string exe_path;      // application
  std::string gui_lib_path;  // libqtgui.so — dlopens the plugin
  std::string plugin_soname;
  std::string plugin_dir;
};

/// `use_rpath` selects whether the application uses RPATH (plugin found via
/// ancestor propagation) or RUNPATH (plugin NOT found from the dlopen).
QtPluginScenario make_qt_plugin_scenario(vfs::FileSystem& fs, bool use_rpath);

/// Host library leaking through an unmasked host dir into a container.
///
/// The image ships /bin/tool (RUNPATH "$ORIGIN/../lib", so it works at any
/// mountpoint), /lib/libapp.so — built WITHOUT search paths, the classic
/// culprit — and /lib/libdeps.so. The host carries an OLD copy of
/// libdeps.so in /usr/lib, and the container's ld.so.conf lists the host
/// dir before the app dir. The leak needs a specific mount stacking: image
/// mounted, host dir visible. Masking `host_lib_dir` with an empty tmpfs
/// (SandboxSpec::mask) fixes the load — the cache then resolves to the
/// image's copy.
struct ContainerLeakScenario {
  std::shared_ptr<vfs::FileSystem> image;
  std::string image_mount;      // /app
  std::string exe;              // /app/bin/tool in the composed namespace
  std::string host_lib_dir;     // /usr/lib — mask this to fix the leak
  std::string leak_soname;      // libdeps.so
  std::string image_marker;     // symbol only the image's copy defines
  std::string host_marker;      // symbol only the host's stale copy defines
  loader::SearchConfig search;  // container ld.so.conf: host dir, app dir
};

ContainerLeakScenario make_container_leak_scenario(vfs::FileSystem& host);

/// True when the load bound the HOST's copy of the leak soname — the
/// wrong-library condition the masking fixes.
bool container_host_leaked(const loader::LoadReport& report,
                           const ContainerLeakScenario& scenario);

/// Containerized Fig 6 substrate (§V-A brought to the container world):
/// the Pynamic-style app frozen into a read-only rootfs image, once as
/// built and once SHRINKWRAPPED INSIDE THE IMAGE before freezing — the
/// three-substrate launch sweep (bare host / image / image + shrinkwrap)
/// runs the same binary over all of them. The image is its own rootfs
/// (image_mount "/", the squashfs-container idiom), so the absolute paths
/// generation bakes in — RPATH directories and frozen DT_NEEDED entries
/// alike — resolve identically bare and containerized; per-rank sandboxes
/// stack a CoW overlay on it (SandboxSpec::writable_image_overlay), which
/// models the cold-start storm: every rank replays the image's metadata
/// stream, and only overlay divergence is truly rank-private.
struct ContainerLaunchScenario {
  std::shared_ptr<vfs::FileSystem> image;          // the app as built
  std::shared_ptr<vfs::FileSystem> wrapped_image;  // shrinkwrapped, frozen
  std::string image_mount;  // "/" — the container's own rootfs
  std::string exe;          // same path on the host and in the container
  /// Generation record of the bare app (module list, search dirs).
  PynamicApp app;
};

/// Build the twin images. `config.root` must be chosen so the app's paths
/// do not collide with host content when mounted at "/".
ContainerLaunchScenario make_container_launch_scenario(
    const PynamicConfig& config = {});

/// Mixed-Pynamic MPMD fleet (heterogeneous launch measurement): rank r
/// runs program class `r % classes` of the containerized app. Class 0 is
/// the app as shipped (a pristine sandbox); class c > 0 shadows c of the
/// app's modules into its FIRST search directory inside the rank's private
/// overlay (the loader then binds the overlay copies — rank-private
/// metadata) and prepends c class-unique library directories to the loader
/// environment (extra probes on the shared substrate). Every class
/// therefore has a distinct (overlay fingerprint, environment) key AND a
/// distinct measured op stream, while two ranks of one class produce
/// byte-identical sandboxes — exactly what fingerprint-clustered fleet
/// measurement (launch::FleetConfig::cluster_ranks) keys on.
///
/// Deterministic and core-free by design: callers wrap it into a
/// rank_setup hook as
///   fleet.rank_setup = [&](core::Session& s, int r) {
///     workload::apply_mpmd_rank(s.fs(), s.env(), app, r, classes);
///   };
int mpmd_class_of(int rank, int classes);
void apply_mpmd_rank(vfs::FileSystem& fs, loader::Environment& env,
                     const PynamicApp& app, int rank, int classes);

/// Stale squashfs image shadowing an updated host library: the host's
/// /usr/lib copy of the bundled library has been patched, but the app
/// image still carries (and its RUNPATH prefers) the old one. Remounting
/// the rebuilt `fresh_image` is the fix.
struct StaleImageScenario {
  std::shared_ptr<vfs::FileSystem> stale_image;
  std::shared_ptr<vfs::FileSystem> fresh_image;
  std::string image_mount;  // /app
  std::string exe;          // /app/bin/tool
  std::string lib_soname;   // libtls.so
  std::string stale_marker;
  std::string fresh_marker;
};

StaleImageScenario make_stale_image_scenario(vfs::FileSystem& host);

/// True when the load bound the stale bundled copy instead of a fresh one.
bool stale_library_loaded(const loader::LoadReport& report,
                          const StaleImageScenario& scenario);

}  // namespace depchaos::workload
