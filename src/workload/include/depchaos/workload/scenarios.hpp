// Scenario builders for the paper's concrete failure cases.
//
//  * ROCm three-factor failure (§V-B.1): RPATH on the executable +
//    LD_LIBRARY_PATH from a different ROCm module + RUNPATH inside the ROCm
//    libraries => internal libraries of the WRONG version get loaded.
//  * samba/dbwrap_tool (Listing 1): a library four levels down has no
//    RUNPATH; its dependency resolves only because an earlier subtree
//    already loaded it.
//  * libomp/libompstubs (§V-B.2): two drop-in libraries defining the same
//    strong symbols; load order decides behaviour; the link line rejects
//    them together.
//  * RUNPATH paradox (Fig 3): no single search-path ordering can pick
//    dirA/liba.so AND dirB/libb.so.
//  * Qt plugin trap (§III-A): dlopen from inside a library sees RPATH
//    ancestry but not the executable's RUNPATH.
#pragma once

#include <string>
#include <vector>

#include "depchaos/loader/loader.hpp"
#include "depchaos/vfs/vfs.hpp"

namespace depchaos::workload {

struct RocmScenario {
  std::string exe_path;
  std::string good_lib_dir;  // /opt/rocm-4.5/lib
  std::string bad_lib_dir;   // /opt/rocm-4.3/lib
  /// Environment with the WRONG module loaded (LD_LIBRARY_PATH -> 4.3).
  loader::Environment wrong_module_env;
  loader::Environment clean_env;
};

/// Build the ROCm layout. The application was built against 4.5; the
/// internal library carries a version marker symbol (rocm_version_4_5 /
/// rocm_version_4_3) so tests can detect a mixed load.
RocmScenario make_rocm_scenario(vfs::FileSystem& fs);

/// True when the load mixed libraries from both ROCm prefixes — the
/// "segfault" condition of §V-B.1.
bool rocm_versions_mixed(const loader::LoadReport& report,
                         const RocmScenario& scenario);

struct SambaScenario {
  std::string exe_path;  // /usr/bin/dbwrap_tool
  /// The library that has no RUNPATH of its own.
  std::string no_runpath_lib;  // libsamba-modules-samba4.so
  /// Its dependency that is only found via an earlier load.
  std::string rescued_soname;  // libsamba-debug-samba4.so
};

SambaScenario make_samba_scenario(vfs::FileSystem& fs);

struct OmpScenario {
  std::string exe_path;
  std::string libomp_path;
  std::string stubs_path;
  std::string probe_symbol;  // defined strong by BOTH libraries
};

/// `stubs_first` controls the user's link order (the paper's hazard:
/// whichever loads first wins).
OmpScenario make_ompstubs_scenario(vfs::FileSystem& fs,
                                   bool stubs_first = false);

struct ParadoxScenario {
  std::string exe_path;
  std::string dir_a;  // wants liba.so from here
  std::string dir_b;  // wants libb.so from here
  std::string good_a_path;
  std::string good_b_path;
};

ParadoxScenario make_runpath_paradox(vfs::FileSystem& fs);

/// Did the load pick BOTH intended libraries? (Impossible with any single
/// directory-order search; trivial after Shrinkwrap.)
bool paradox_satisfied(const loader::LoadReport& report,
                       const ParadoxScenario& scenario);

/// Re-point the executable's RUNPATH at the given directory order (Fig 3's
/// exhaustive enumeration helper).
void set_paradox_search_order(vfs::FileSystem& fs,
                              const ParadoxScenario& scenario,
                              const std::vector<std::string>& dirs);

struct QtPluginScenario {
  std::string exe_path;      // application
  std::string gui_lib_path;  // libqtgui.so — dlopens the plugin
  std::string plugin_soname;
  std::string plugin_dir;
};

/// `use_rpath` selects whether the application uses RPATH (plugin found via
/// ancestor propagation) or RUNPATH (plugin NOT found from the dlopen).
QtPluginScenario make_qt_plugin_scenario(vfs::FileSystem& fs, bool use_rpath);

}  // namespace depchaos::workload
