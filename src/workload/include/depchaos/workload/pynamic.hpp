// Pynamic-like workload (§V-A, Fig 6).
//
// LLNL's Pynamic benchmark emulates a large dynamically-linked MPI
// application. The paper's configuration ("bigexe"): ~900 shared libraries,
// all listed as needed entries on the executable, "modified slightly to
// place each of them in its own rpath directory" — the worst case for
// directory-list search: resolving module i probes every directory before
// i's, so a full load issues O(n²/2) metadata syscalls.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "depchaos/vfs/vfs.hpp"

namespace depchaos::workload {

struct PynamicConfig {
  std::size_t num_modules = 900;
  /// Additional cross-module needed edges per module (dedup makes these
  /// cache hits; they model the utility libraries Pynamic links).
  std::size_t avg_cross_deps = 2;
  /// Main executable's extra on-disk size (the paper wraps a 213 MiB one).
  std::uint64_t exe_extra_bytes = 213ull << 20;
  std::string root = "/apps/pynamic";
  std::uint64_t seed = 0xdecafbad;
};

struct PynamicApp {
  std::string exe_path;
  std::vector<std::string> module_paths;
  std::vector<std::string> search_dirs;  // one per module
};

/// Build the application tree under config.root.
PynamicApp generate_pynamic(vfs::FileSystem& fs, const PynamicConfig& config);

}  // namespace depchaos::workload
