// Spack recipe corpus (intro claim + DSL stress).
//
// The paper's introduction: "Today the Axom library, a common support
// library for Livermore codes, can require more than 200 total
// dependencies." This module provides (a) a hand-written set of recipes
// for the recognizable core of that stack (axom, raja, umpire, conduit,
// hdf5, mfem, hypre, mpi providers, cmake, python...), written in the
// package.py DSL and REPARSED through the production parser, and (b) a
// deterministic synthetic-recipe generator that emits additional
// package.py sources so the corpus reaches Axom-scale closures and the
// parser/concretizer are exercised at repository scale.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "depchaos/spack/concretizer.hpp"

namespace depchaos::workload {

/// Hand-written package.py sources for the core HPC stack (~20 packages).
std::vector<std::string> core_hpc_recipes();

struct SyntheticRepoConfig {
  /// Number of synthetic packages to generate. The default is sized so
  /// axom's concrete closure crosses the paper's 200-dependency mark.
  std::size_t num_packages = 265;
  /// Dependencies per synthetic package drawn uniformly from
  /// [0, max_deps], always pointing at earlier packages (acyclic).
  std::size_t max_deps = 4;
  /// Fraction of dependency declarations carrying a when= condition.
  double when_fraction = 0.25;
  std::uint64_t seed = 0x5eed5ac4;
};

/// Generate synthetic package.py SOURCE TEXT (parsed by the DSL reader,
/// not constructed directly — the parser is part of what we test at scale).
/// Packages are named "synth0".."synthN-1".
std::vector<std::string> synthetic_recipes(const SyntheticRepoConfig& config);

/// Build the full repository: core recipes plus `extra` synthetic packages
/// wired so that axom additionally depends on a slice of the synthetic
/// layer (giving it a paper-scale closure of 200+ packages).
spack::Repo build_hpc_repo(const SyntheticRepoConfig& config = {});

}  // namespace depchaos::workload
