// Ruby-in-Nix closure generator (Fig 2).
//
// Fig 2 shows the build+runtime derivation closure of the Ruby package in
// nixpkgs: 453 dependencies, dominated by five gcc bootstrap stages, core
// toolchain packages, their fetchurl sources, CVE patches, and setup-hook
// scripts. The generator reproduces that structure: a core package graph
// with realistic names and edges, padded deterministically with source and
// patch derivations until the closure has exactly `target_nodes` members.
#pragma once

#include <cstdint>
#include <string>

#include "depchaos/pkg/nix.hpp"

namespace depchaos::workload {

struct RubyClosureConfig {
  std::size_t target_nodes = 453;  // closure size incl. the root (paper: 453 deps)
  std::size_t bootstrap_stages = 5;
  std::uint64_t seed = 0x10bc0de;
};

struct RubyClosure {
  pkg::nix::DerivationSet drvs;
  std::size_t root = 0;  // ruby-2.7.5.drv
};

RubyClosure generate_ruby_closure(const RubyClosureConfig& config);

}  // namespace depchaos::workload
