#include "depchaos/workload/debian.hpp"

#include "depchaos/elf/patcher.hpp"
#include "depchaos/support/rng.hpp"

namespace depchaos::workload {

std::vector<pkg::deb::Package> generate_debian_corpus(
    const DebianCorpusConfig& config) {
  support::Rng rng(config.seed);
  std::vector<pkg::deb::Package> out;
  out.reserve(config.num_packages);

  static const char* kSections[] = {"libs",  "utils", "devel", "admin",
                                    "net",   "science", "python", "editors"};

  // First pass: names and versions, so dependency constraints can be
  // generated AGAINST the target's real version (a curated archive).
  for (std::size_t i = 0; i < config.num_packages; ++i) {
    pkg::deb::Package pkg;
    pkg.name = "pkg" + std::to_string(i);
    pkg.version = std::to_string(1 + rng.below(9)) + "." +
                  std::to_string(rng.below(30)) + "-" +
                  std::to_string(1 + rng.below(5));
    pkg.section = kSections[rng.below(std::size(kSections))];
    out.push_back(std::move(pkg));
  }

  // Second pass: dependencies.
  for (auto& pkg : out) {
    const std::size_t num_deps = static_cast<std::size_t>(
        rng.between(static_cast<std::int64_t>(config.min_deps),
                    static_cast<std::int64_t>(config.max_deps)));
    for (std::size_t d = 0; d < num_deps; ++d) {
      pkg::deb::DepSpec dep;
      const std::size_t target = rng.below(config.num_packages);
      dep.package = out[target].name;
      const std::string& target_version = out[target].version;
      const bool breaks = rng.chance(config.broken_fraction);
      const double roll = rng.uniform();
      if (roll < config.frac_unversioned && !breaks) {
        dep.kind = pkg::deb::DepKind::Unversioned;
      } else if (roll < config.frac_unversioned + config.frac_range) {
        dep.kind = pkg::deb::DepKind::VersionRange;
        if (breaks) {
          dep.relation = ">>";  // strictly newer than what exists
          dep.version = target_version;
        } else {
          // A lower bound at (or just below) the shipped version holds.
          dep.relation = rng.chance(0.8) ? ">=" : "<=";
          dep.version = dep.relation == ">=" ? "0.1" : "99:99";
          if (rng.chance(0.5)) {
            dep.relation = ">=";
            dep.version = target_version;
          }
        }
      } else {
        dep.kind = pkg::deb::DepKind::Exact;
        dep.relation = "=";
        dep.version = breaks ? target_version + "+broken" : target_version;
      }
      pkg.depends.push_back(std::move(dep));
    }
  }
  return out;
}

std::string corpus_to_control_text(
    const std::vector<pkg::deb::Package>& pkgs) {
  return pkg::deb::to_control(pkgs);
}

InstalledSystem generate_installed_system(
    const InstalledSystemConfig& config) {
  support::Rng rng(config.seed);
  support::ZipfSampler zipf(config.num_shared_objects, config.zipf_s);
  InstalledSystem system;
  system.num_shared_objects = config.num_shared_objects;
  system.binary_deps.resize(config.num_binaries);

  for (auto& deps : system.binary_deps) {
    const std::size_t num_deps = static_cast<std::size_t>(
        rng.between(static_cast<std::int64_t>(config.min_deps),
                    static_cast<std::int64_t>(config.max_deps)));
    std::vector<bool> used(config.num_shared_objects, false);
    // Every dynamic binary uses the C library (rank 0).
    deps.push_back(0);
    used[0] = true;
    for (std::size_t d = 1; d < num_deps; ++d) {
      const std::size_t object = zipf.sample(rng);
      if (!used[object]) {
        used[object] = true;
        deps.push_back(object);
      }
    }
  }
  return system;
}

analysis::Histogram reuse_histogram(const InstalledSystem& system) {
  std::vector<std::uint64_t> counts(system.num_shared_objects, 0);
  for (const auto& deps : system.binary_deps) {
    for (const std::size_t object : deps) ++counts[object];
  }
  analysis::Histogram histogram;
  histogram.reserve(counts.size());
  for (const auto count : counts) histogram.add(count);
  return histogram;
}

void materialize_installed_system(vfs::FileSystem& fs,
                                  const InstalledSystem& system) {
  for (std::size_t j = 0; j < system.num_shared_objects; ++j) {
    const std::string soname = "libso" + std::to_string(j) + ".so";
    elf::install_object(fs, "/usr/lib/" + soname, elf::make_library(soname));
  }
  for (std::size_t b = 0; b < system.binary_deps.size(); ++b) {
    std::vector<std::string> needed;
    for (const std::size_t j : system.binary_deps[b]) {
      needed.push_back("libso" + std::to_string(j) + ".so");
    }
    elf::install_object(fs, "/usr/bin/bin" + std::to_string(b),
                        elf::make_executable(std::move(needed)));
  }
}

}  // namespace depchaos::workload
