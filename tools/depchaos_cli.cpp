// depchaos — command-line multi-tool over world snapshots.
//
// Mirrors the workflow of the real tools (shrinkwrap, libtree, ldd,
// patchelf) but against simulated worlds, so every paper scenario can be
// driven from a shell:
//
//   depchaos worldgen pynamic world.dcw --modules=200
//   depchaos libtree  world.dcw /apps/pynamic/bigexe
//   depchaos ldd      world.dcw /apps/pynamic/bigexe --debug
//   depchaos shrinkwrap world.dcw /apps/pynamic/bigexe   (rewrites world.dcw)
//   depchaos whatif   world.dcw /apps/pynamic/bigexe   (fork; no rewrite)
//   depchaos verify   world.dcw /apps/pynamic/bigexe
//   depchaos patchelf world.dcw /path --set-runpath /a:/b
//   depchaos launch   world.dcw /apps/pynamic/bigexe --ranks=512
//   depchaos sandbox  host.dcw app.dcw /app/bin/tool --mask=/usr/lib \
//                     --overlay --save-fleet=fleet.dcw2
//   depchaos mount    fleet.dcw2                      (mount(8)-style list)
//
// Worldgen scenarios: pynamic, emacs, samba, rocm, paradox, debian.
//
// World files may be DCWORLD1 single-tree images or DCWORLD2 fleet images
// (base + per-view deltas + mount tables); fleet images open on their
// first view. `sandbox` assembles a container view — the app image
// mounted read-only (or behind a writable overlay with --overlay), host
// dirs masked by tmpfs — runs an ldd-style load inside it, and can
// persist host+sandbox as a v2 fleet without ever rewriting the inputs.
//
// Every subcommand is a thin shell over the core::Session façade: worldgen
// composes a world with core::WorldBuilder and saves the snapshot; the
// rest reopen it with Session::from_snapshot and call the matching verb
// (load / libtree / shrinkwrap / verify / launch). No subcommand wires a
// FileSystem or Loader by hand.

#include <atomic>
#include <cerrno>
#include <chrono>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "depchaos/core/session.hpp"
#include "depchaos/core/world.hpp"
#include "depchaos/elf/patcher.hpp"
#include "depchaos/support/strings.hpp"
#include "depchaos/svc/session_pool.hpp"
#include "depchaos/svc/wire.hpp"
#include "depchaos/vfs/snapshot.hpp"
#include "depchaos/workload/scenarios.hpp"

using namespace depchaos;

namespace {

void print_usage(std::FILE* out) {
  std::fprintf(
      out,
      "usage:\n"
      "  depchaos worldgen <scenario> <world-file> [--modules=N]\n"
      "      scenarios: pynamic emacs samba rocm paradox debian\n"
      "  depchaos libtree <world-file> <exe> [--paths]\n"
      "  depchaos ldd <world-file> <exe> [--debug] [--env=DIR:DIR...]\n"
      "  depchaos shrinkwrap <world-file> <exe> [--no-lift] [--audit-dlopen]\n"
      "  depchaos whatif <world-file> <exe> [--paths] [--audit-dlopen]\n"
      "      (shrinkwrap inside a CoW fork; prints the libtree diff;\n"
      "       never rewrites the world file)\n"
      "  depchaos verify <world-file> <exe> [--env=DIR:DIR...]\n"
      "  depchaos patchelf <world-file> <path> (--set-runpath|--set-rpath)"
      " A:B | --print\n"
      "  depchaos launch <world-file> <exe> [--ranks=N]\n"
      "      [--sandbox=<image-world>] [--mount=/] [--overlay]\n"
      "      [--mask=DIR:DIR...] [--spindle] [--prestaged]\n"
      "      [--engine=analytic|sim] [--dist=fixed|uniform|pareto]\n"
      "      [--seed=N] [--cache] [--negative-cache] [--waves=N]\n"
      "      [--straggler=RANK[:SECONDS]] [--ranks-mix=K]\n"
      "      (--sandbox measures the rank op stream inside a per-rank\n"
      "       container view — image mount + CoW overlay with --overlay,\n"
      "       host dirs masked — and splits the stream into shared-image\n"
      "       metadata ops [shared-image ops=], identical across ranks and\n"
      "       servable once fleet-wide, vs per-rank overlay metadata ops\n"
      "       [per-rank overlay ops=], CoW divergence only that rank can\n"
      "       resolve; --prestaged serves the shared part at node-local\n"
      "       rates. --engine=sim replays the stream through the\n"
      "       discrete-event metadata-server simulator instead of the\n"
      "       closed-form storm formula: --dist/--seed shape the service\n"
      "       time, --cache enables client metadata caching (--waves=N\n"
      "       relaunches the fleet N times against warm caches), and\n"
      "       --straggler delays one rank's start [default 1s].\n"
      "       --waves/--straggler/--cache need --engine=sim;\n"
      "       --waves/--straggler also need --sandbox.\n"
      "       --ranks-mix=K runs a mixed-Pynamic MPMD fleet — rank r is\n"
      "       program class r%%K, each class shadowing modules into its\n"
      "       private overlay — and the launcher measures ONE loader\n"
      "       replay per class instead of per rank [rank classes=];\n"
      "       needs --sandbox over a pynamic image plus --overlay)\n"
      "  depchaos sandbox <host-world> <image-world> <exe> [--mount=/app]\n"
      "      [--mask=DIR:DIR...] [--overlay] [--conf=DIR:DIR...]\n"
      "      [--env=DIR:DIR...] [--save-fleet=FILE]\n"
      "      (container view over a CoW fork: image mounted read-only, or\n"
      "       behind a writable overlay with --overlay; host dirs masked;\n"
      "       never rewrites the inputs. Like mount(2), a mask needs its\n"
      "       mountpoint dir to exist or be creatable — masking a dir\n"
      "       absent from a read-only image root requires --overlay)\n"
      "  depchaos mount <world-file>\n"
      "      (mount table of a fleet image's first view)\n"
      "  depchaos serve <world-file> --exe=PATH [--clients=N]\n"
      "      [--requests=N] [--shards=N] [--threads=N] [--mix=load|mixed]\n"
      "      [--seed=N] [--high-water=N] [--no-memo] [--listen=PORT]\n"
      "      (multi-tenant session service demo: a svc::SessionPool over\n"
      "       the world plus an in-process scripted driver — N client\n"
      "       threads each firing a request script at the pool's sharded\n"
      "       admission queues; every client works on its own O(1) CoW\n"
      "       fork. --mix=mixed adds whatif/query/shrinkwrap traffic to\n"
      "       the load storm; past --high-water pending requests per\n"
      "       shard, submits are rejected with a retry-after hint and the\n"
      "       driver backs off and retries. Prints the PoolStats\n"
      "       dashboard: per-shard depths, executed/memoized/rejected,\n"
      "       per-op p50/p99 latency.\n"
      "       --listen=PORT hosts the pool behind the length-prefixed\n"
      "       wire protocol instead of running the in-process driver\n"
      "       [0 = ephemeral; the bound port is printed], serving until a\n"
      "       remote `connect ... --shutdown`; the WireStats counters\n"
      "       join the dashboard)\n"
      "  depchaos connect HOST:PORT [--clients=N] [--requests=N]\n"
      "      [--mix=load|mixed] [--seed=N] [--exe=PATH] [--shutdown]\n"
      "      (remote driver for `serve --listen`: the same scripted\n"
      "       client mix over sockets, one connection per client thread;\n"
      "       Overloaded responses carry the pool's shard/depth/retry-\n"
      "       after and the driver backs off exactly like an in-process\n"
      "       submitter. --exe defaults to the server world's default\n"
      "       target; --shutdown asks the server to drain and exit after\n"
      "       the run)\n");
}

[[noreturn]] void usage() {
  print_usage(stderr);
  std::exit(2);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "depchaos: cannot read %s\n", path.c_str());
    std::exit(1);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "depchaos: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  out << contents;
}

bool has_flag(const std::vector<std::string>& args, std::string_view flag) {
  for (const auto& arg : args) {
    if (arg == flag) return true;
  }
  return false;
}

std::string flag_value(const std::vector<std::string>& args,
                       std::string_view prefix, std::string fallback) {
  for (const auto& arg : args) {
    if (arg.starts_with(prefix)) {
      return arg.substr(prefix.size());
    }
  }
  return fallback;
}

// Checked numeric parsing. The old pattern — `std::strtol(text, nullptr,
// 10)` — ignored endptr and errno, so `--clients=abc` silently ran 0
// clients, `--ranks=1e3` parsed as 1 (strtol stops at the 'e'), and
// `--clients=-1` wrapped to ~1.8e19 once cast to size_t. Every numeric
// flag now goes through these: garbage, trailing junk, overflow, and
// out-of-range values all fail loudly with a usage-style exit code.

long long parse_long_text(std::string_view flag, const std::string& text,
                          long long min, long long max) {
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (text.empty() || end == text.c_str() || *end != '\0' || errno == ERANGE) {
    std::fprintf(stderr, "depchaos: %.*s wants an integer, got \"%s\"\n",
                 static_cast<int>(flag.size()), flag.data(), text.c_str());
    std::exit(2);
  }
  if (value < min || value > max) {
    std::fprintf(stderr,
                 "depchaos: %.*s%lld out of range [%lld, %lld]\n",
                 static_cast<int>(flag.size()), flag.data(), value, min, max);
    std::exit(2);
  }
  return value;
}

long long parse_long(const std::vector<std::string>& args,
                     std::string_view prefix, long long fallback,
                     long long min, long long max) {
  return parse_long_text(prefix, flag_value(args, prefix,
                                            std::to_string(fallback)),
                         min, max);
}

double parse_double_text(std::string_view flag, const std::string& text,
                         double min, double max) {
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (text.empty() || end == text.c_str() || *end != '\0' || errno == ERANGE) {
    std::fprintf(stderr, "depchaos: %.*s wants a number, got \"%s\"\n",
                 static_cast<int>(flag.size()), flag.data(), text.c_str());
    std::exit(2);
  }
  if (!(value >= min && value <= max)) {  // NaN fails too
    std::fprintf(stderr, "depchaos: %.*s%g out of range [%g, %g]\n",
                 static_cast<int>(flag.size()), flag.data(), value, min, max);
    std::exit(2);
  }
  return value;
}

loader::Environment env_from_args(const std::vector<std::string>& args) {
  loader::Environment env;
  const std::string dirs = flag_value(args, "--env=", "");
  if (!dirs.empty()) {
    env.ld_library_path = support::split_nonempty(dirs, ':');
  }
  return env;
}

/// Reopen a saved world as a session, with per-subcommand config knobs.
core::Session open_session(const std::vector<std::string>& args,
                           core::SessionConfig config = {}) {
  config.env = env_from_args(args);
  return core::Session::from_snapshot(read_file(args[0]), std::move(config));
}

int cmd_worldgen(const std::vector<std::string>& args) {
  if (args.size() < 2) usage();
  const std::string& scenario = args[0];
  const std::string& out_path = args[1];
  core::WorldBuilder builder;
  if (scenario == "pynamic") {
    workload::PynamicConfig config;
    config.num_modules = static_cast<std::size_t>(
        parse_long(args, "--modules=", 120, 1, 1'000'000));
    config.exe_extra_bytes = 4u << 20;
    builder.pynamic(config);
  } else {
    builder.scenario(scenario);  // throws (-> usage-level error) on unknown
  }
  write_file(out_path, builder.save());
  std::printf("wrote %s\n%s\n", out_path.c_str(), builder.note().c_str());
  return 0;
}

int cmd_libtree(const std::vector<std::string>& args) {
  if (args.size() < 2) usage();
  core::SessionConfig config;
  config.search.classify_cache_hits = true;
  auto session = open_session(args, std::move(config));
  core::Session::TreeOptions options;
  options.show_paths = has_flag(args, "--paths");
  std::fputs(session.libtree(args[1], options).c_str(), stdout);
  return 0;
}

int cmd_ldd(const std::vector<std::string>& args) {
  if (args.size() < 2) usage();
  core::SessionConfig config;
  config.search.record_probes = has_flag(args, "--debug");
  auto session = open_session(args, std::move(config));
  const auto report = session.load(args[1]);
  for (const auto& line : report.probe_log) {
    std::printf("    %s\n", line.c_str());
  }
  for (std::size_t i = 1; i < report.load_order.size(); ++i) {
    const auto& obj = report.load_order[i];
    std::printf("\t%s => %s (%s)\n", obj.name.c_str(), obj.path.c_str(),
                std::string(loader::how_found_name(obj.how)).c_str());
  }
  for (const auto& missing : report.missing) {
    std::printf("\t%s => not found\n", missing.name.c_str());
  }
  std::printf("%llu metadata syscalls, %llu failed probes\n",
              static_cast<unsigned long long>(report.stats.metadata_calls()),
              static_cast<unsigned long long>(report.stats.failed_probes));
  return report.success ? 0 : 1;
}

int cmd_shrinkwrap(const std::vector<std::string>& args) {
  if (args.size() < 2) usage();
  auto session = open_session(args);
  core::Session::WrapOptions options;
  options.lift_transitive = !has_flag(args, "--no-lift");
  options.audit_dlopens = has_flag(args, "--audit-dlopen");
  const auto report = session.shrinkwrap(args[1], options);
  if (!report.ok()) {
    for (const auto& name : report.unresolved) {
      std::fprintf(stderr, "unresolved: %s\n", name.c_str());
    }
    return 1;
  }
  for (const auto& entry : report.new_needed) {
    std::printf("needed %s\n", entry.c_str());
  }
  for (const auto& name : report.dlopen_unresolved) {
    std::printf("warning: dlopen target not found: %s\n", name.c_str());
  }
  write_file(args[0], session.save());
  std::printf("rewrote %s in %s\n", args[1].c_str(), args[0].c_str());
  return 0;
}

int cmd_whatif(const std::vector<std::string>& args) {
  if (args.size() < 2) usage();
  core::SessionConfig config;
  config.search.classify_cache_hits = true;  // libtree-grade annotations
  auto session = open_session(args, std::move(config));
  core::Session::WrapOptions options;
  options.audit_dlopens = has_flag(args, "--audit-dlopen");
  core::Session::TreeOptions tree;
  tree.show_paths = has_flag(args, "--paths");
  const auto report = session.whatif(args[1], options, tree);
  if (!report.wrap.ok()) {
    for (const auto& name : report.wrap.unresolved) {
      std::fprintf(stderr, "unresolved: %s\n", name.c_str());
    }
    return 1;
  }
  std::printf("--- %s (as is)\n+++ %s (shrinkwrapped, in a fork)\n",
              args[1].c_str(), args[1].c_str());
  std::fputs(report.tree_diff.c_str(), stdout);
  std::printf("\nwould freeze %zu needed entries\n",
              report.wrap.new_needed.size());
  std::printf("metadata syscalls: %llu -> %llu\n",
              static_cast<unsigned long long>(
                  report.before.stats.metadata_calls()),
              static_cast<unsigned long long>(
                  report.after.stats.metadata_calls()));
  std::printf("%s left untouched\n", args[0].c_str());
  return 0;
}

int cmd_verify(const std::vector<std::string>& args) {
  if (args.size() < 2) usage();
  auto session = open_session(args);
  const auto report = session.verify(args[1]);
  for (const auto& name : report.non_absolute) {
    std::printf("not absolute: %s\n", name.c_str());
  }
  for (const auto& name : report.searched) {
    std::printf("found by search (not frozen): %s\n", name.c_str());
  }
  for (const auto& name : report.missing) {
    std::printf("missing: %s\n", name.c_str());
  }
  std::printf("%s: %s\n", args[1].c_str(),
              report.ok ? "fully shrinkwrapped" : "NOT shrinkwrapped");
  return report.ok ? 0 : 1;
}

int cmd_patchelf(const std::vector<std::string>& args) {
  if (args.size() < 2) usage();
  auto session = open_session(args);
  elf::Patcher patcher(session.fs());
  if (has_flag(args, "--print")) {
    const auto object = patcher.read(args[1]);
    std::fputs(elf::serialize(object).c_str(), stdout);
    return 0;
  }
  const std::string runpath = flag_value(args, "--set-runpath=", "");
  const std::string rpath = flag_value(args, "--set-rpath=", "");
  if (runpath.empty() && rpath.empty()) usage();
  if (!runpath.empty()) {
    patcher.set_runpath(args[1], support::split_nonempty(runpath, ':'));
  }
  if (!rpath.empty()) {
    patcher.set_rpath(args[1], support::split_nonempty(rpath, ':'));
  }
  write_file(args[0], session.save());
  std::printf("patched %s\n", args[1].c_str());
  return 0;
}

std::vector<std::string> split_flag(const std::vector<std::string>& args,
                                    std::string_view prefix) {
  return support::split_nonempty(flag_value(args, prefix, ""), ':');
}

/// Open a world file (v1 or v2; fleets contribute their first view) as a
/// shared image for SandboxSpec::image.
std::shared_ptr<vfs::FileSystem> load_image_world(const std::string& path) {
  auto fleet = vfs::load_fleet(read_file(path));
  return std::make_shared<vfs::FileSystem>(
      fleet.views.empty() ? std::move(fleet.base)
                          : std::move(fleet.views.front()));
}

int cmd_sandbox(const std::vector<std::string>& args) {
  if (args.size() < 3) usage();
  // The host session carries the container's ld.so.conf (--conf) and env.
  core::SessionConfig config;
  config.search.ld_so_conf = split_flag(args, "--conf=");
  config.env = env_from_args(args);
  auto host = core::Session::from_snapshot(read_file(args[0]),
                                           std::move(config));

  core::Session::SandboxSpec spec;
  spec.image = load_image_world(args[1]);
  spec.image_mount = flag_value(args, "--mount=", "/app");
  spec.writable_image_overlay = has_flag(args, "--overlay");
  spec.mask = split_flag(args, "--mask=");
  spec.exe = args[2];
  auto job = host.sandbox(spec);

  for (const auto& info : job.fs().mounts()) {
    std::printf("%s on %s (%s)\n",
                std::string(vfs::mount_kind_name(info.kind)).c_str(),
                info.point.c_str(), info.read_only ? "ro" : "rw");
  }
  const auto report = job.load();
  for (std::size_t i = 1; i < report.load_order.size(); ++i) {
    const auto& obj = report.load_order[i];
    std::printf("\t%s => %s (%s)\n", obj.name.c_str(), obj.path.c_str(),
                std::string(loader::how_found_name(obj.how)).c_str());
  }
  for (const auto& missing : report.missing) {
    std::printf("\t%s => not found\n", missing.name.c_str());
  }
  std::printf("%llu metadata syscalls, %llu failed probes\n",
              static_cast<unsigned long long>(report.stats.metadata_calls()),
              static_cast<unsigned long long>(report.stats.failed_probes));

  const std::string fleet_out = flag_value(args, "--save-fleet=", "");
  if (!fleet_out.empty()) {
    const std::vector<const vfs::FileSystem*> views = {&job.fs()};
    write_file(fleet_out, vfs::save_fleet(host.fs(), views));
    std::printf("wrote fleet %s (host + 1 sandbox, v2 deltas)\n",
                fleet_out.c_str());
  }
  return report.success ? 0 : 1;
}

int cmd_mount(const std::vector<std::string>& args) {
  if (args.empty()) usage();
  auto fleet = vfs::load_fleet(read_file(args[0]));
  if (fleet.views.empty()) {
    std::printf("no mounts (flat world)\n");
    return 0;
  }
  const auto mounts = fleet.views.front().mounts();
  if (mounts.empty()) {
    std::printf("no mounts\n");
    return 0;
  }
  for (const auto& info : mounts) {
    std::printf("%s on %s (%s)\n",
                std::string(vfs::mount_kind_name(info.kind)).c_str(),
                info.point.c_str(), info.read_only ? "ro" : "rw");
  }
  return 0;
}

/// The PoolStats dashboard, shared by both `serve` modes (in-process driver
/// and `--listen` wire host).
void print_pool_dashboard(const svc::PoolStats& stats) {
  std::printf("clients live        %zu (sum private divergence %llu bytes)\n",
              stats.clients_live,
              static_cast<unsigned long long>(stats.fork_owned_bytes));
  std::printf("executed / memoized %llu / %llu\n",
              static_cast<unsigned long long>(stats.executed - stats.memoized),
              static_cast<unsigned long long>(stats.memoized));
  std::printf("rejected / evicted / collapsed / errors  %llu / %llu / %llu "
              "/ %llu\n",
              static_cast<unsigned long long>(stats.rejected),
              static_cast<unsigned long long>(stats.evicted),
              static_cast<unsigned long long>(stats.collapsed),
              static_cast<unsigned long long>(stats.worker_errors));
  std::printf("drain cycles        %llu over %zu shards\n",
              static_cast<unsigned long long>(stats.drain_cycles),
              stats.shards);
  // Contention dashboard: whether the multi-core fast paths actually ran
  // hot — every admission a wait-free sealed stamp, memo probes spread
  // across shards, strands batching well, lanes balanced.
  std::printf("forks wait-free / locked  %llu / %llu\n",
              static_cast<unsigned long long>(stats.forks_wait_free),
              static_cast<unsigned long long>(stats.forks_locked));
  std::uint64_t busiest_shard = 0;
  for (const std::uint64_t hits : stats.memo_shard_hits) {
    busiest_shard = std::max(busiest_shard, hits);
  }
  std::printf("memo hits / misses  %llu / %llu across %zu shards "
              "(busiest shard %llu hits)\n",
              static_cast<unsigned long long>(stats.memo_hits),
              static_cast<unsigned long long>(stats.memo_misses),
              stats.memo_shard_hits.size(),
              static_cast<unsigned long long>(busiest_shard));
  std::printf("drain batch size    p50=%.0f p99=%.0f max=%llu over %llu "
              "cycles\n",
              stats.drain_batch.p50, stats.drain_batch.p99,
              static_cast<unsigned long long>(stats.drain_batch.max),
              static_cast<unsigned long long>(stats.drain_batch.cycles));
  std::printf("pool workers        %zu (%llu cross-lane steals)\n",
              stats.pool_threads,
              static_cast<unsigned long long>(stats.pool_steals));
  for (std::size_t k = 0; k < svc::kRequestKinds; ++k) {
    const svc::OpLatency& lat = stats.latency[k];
    if (lat.count == 0) continue;
    std::printf("%-12s n=%-8llu p50=%.0fus p99=%.0fus max=%.0fus\n",
                std::string(svc::request_kind_name(
                    static_cast<svc::RequestKind>(k))).c_str(),
                static_cast<unsigned long long>(lat.count), lat.p50_us,
                lat.p99_us, lat.max_us);
  }
}

/// The WireStats counters, printed above the pool dashboard when `serve`
/// ran as a socket host.
void print_wire_stats(const svc::WireStats& wire) {
  std::printf("wire connections    %llu accepted, %llu still open\n",
              static_cast<unsigned long long>(wire.accepted),
              static_cast<unsigned long long>(wire.active));
  std::printf("wire frames in/out  %llu / %llu (%llu / %llu bytes)\n",
              static_cast<unsigned long long>(wire.frames_in),
              static_cast<unsigned long long>(wire.frames_out),
              static_cast<unsigned long long>(wire.bytes_in),
              static_cast<unsigned long long>(wire.bytes_out));
  std::printf("wire decode errors / timeouts / overloaded  %llu / %llu / "
              "%llu\n",
              static_cast<unsigned long long>(wire.decode_errors),
              static_cast<unsigned long long>(wire.timeouts),
              static_cast<unsigned long long>(wire.overloaded));
}

// `depchaos serve` — the session service. Two modes share one pool setup:
// the default in-process demo (the "clients" are driver threads; everything
// else is the production path — typed submits into the sharded admission
// queues, strand drains on the shared worker pool, Overloaded backpressure
// with driver-side retry, per-client CoW forks of the one loaded world),
// and `--listen=PORT`, which hosts the same pool behind the wire protocol
// until a remote client sends Shutdown (`depchaos connect ... --shutdown`).
int cmd_serve(const std::vector<std::string>& args) {
  if (args.empty()) usage();
  const std::size_t clients =
      static_cast<std::size_t>(parse_long(args, "--clients=", 64, 0, 100'000));
  const std::size_t requests = static_cast<std::size_t>(
      parse_long(args, "--requests=", 32, 0, 1'000'000'000));
  const std::string mix = flag_value(args, "--mix=", "load");
  if (mix != "load" && mix != "mixed") usage();
  const std::uint64_t seed =
      static_cast<std::uint64_t>(parse_long(args, "--seed=", 1, 0, LLONG_MAX));

  svc::PoolConfig config;
  config.shards =
      static_cast<std::size_t>(parse_long(args, "--shards=", 8, 1, 4096));
  config.threads =
      static_cast<std::size_t>(parse_long(args, "--threads=", 0, 0, 4096));
  config.queue_high_water = static_cast<std::size_t>(
      parse_long(args, "--high-water=", 1024, 1, 1'000'000'000));
  config.memoize_loads = !has_flag(args, "--no-memo");

  core::Session base = open_session(args);
  // Saved snapshots carry no default target; `--exe=` names the app the
  // driver storms (falls back to a world-carried default when present).
  const std::string exe = flag_value(args, "--exe=", base.default_exe());
  if (exe.empty()) {
    std::fprintf(stderr,
                 "depchaos: serve needs --exe=PATH (world carries no default "
                 "target)\n");
    return 1;
  }
  // Remote clients may send empty Load payloads meaning "the default
  // target"; make `--exe=` that default so both modes storm the same app.
  base.set_default_exe(exe);
  svc::SessionPool pool(std::move(base), config);

  const std::string listen = flag_value(args, "--listen=", "");
  if (!listen.empty()) {
    svc::WireConfig wire_config;
    wire_config.port = static_cast<std::uint16_t>(
        parse_long_text("--listen=", listen, 0, 65535));
    svc::WireServer server(pool, wire_config);
    // The exact line the CI loopback smoke greps for the ephemeral port.
    std::printf("listening on %s:%u (%s, %zu shards, memo %s)\n",
                wire_config.host.c_str(), server.port(), exe.c_str(),
                config.shards, pool.memoization_enabled() ? "on" : "off");
    std::fflush(stdout);
    server.wait();  // until a remote Shutdown frame
    print_wire_stats(server.stats());
    print_pool_dashboard(pool.stats());
    return 0;
  }

  std::printf("serving %s: %zu clients x %zu requests (%s mix, %zu shards, "
              "memo %s)\n",
              exe.c_str(), clients, requests, mix.c_str(), config.shards,
              pool.memoization_enabled() ? "on" : "off");

  std::atomic<std::uint64_t> retries{0};
  std::atomic<std::uint64_t> request_errors{0};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> drivers;
  drivers.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    drivers.emplace_back([&, c] {
      const svc::ClientId id = static_cast<svc::ClientId>(c + 1);
      std::mt19937_64 rng(seed * 1000003 + c);
      std::uniform_int_distribution<int> op(0, 9);
      for (std::size_t r = 0; r < requests; ++r) {
        // 0-6 load, 7 query, 8 whatif, 9 shrinkwrap (mixed mode only).
        const int pick = mix == "mixed" ? op(rng) : 0;
        for (;;) {  // back off and retry on admission rejection
          try {
            if (pick >= 9) {
              pool.submit_shrinkwrap(id, exe).get();
            } else if (pick == 8) {
              pool.submit_whatif(id, exe).get();
            } else if (pick == 7) {
              pool.submit_query(id).get();
            } else {
              pool.submit_load_shared(id, exe).get();
            }
            break;
          } catch (const svc::Overloaded& overloaded) {
            retries.fetch_add(1);
            std::this_thread::sleep_for(std::chrono::duration<double>(
                overloaded.retry_after_s()));
          } catch (const std::exception&) {
            // A failed request (bad exe, wrap error) came back through the
            // future; the pool already counted it. Keep driving.
            request_errors.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  for (auto& driver : drivers) driver.join();
  pool.drain();
  const double elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();

  const svc::PoolStats stats = pool.stats();
  std::printf("\n%llu requests in %.3fs (%.0f req/s), %llu driver retries, "
              "%llu request errors\n",
              static_cast<unsigned long long>(stats.executed), elapsed,
              static_cast<double>(stats.executed) / elapsed,
              static_cast<unsigned long long>(retries.load()),
              static_cast<unsigned long long>(request_errors.load()));
  print_pool_dashboard(stats);
  return 0;
}

// `depchaos connect` — the remote half of `serve --listen`: the same
// scripted client mix the in-process demo drives, but over sockets. Each
// driver thread owns one connection; Overloaded responses reconstruct the
// pool's backpressure (shard, depth, retry-after) and the driver backs off
// exactly like an in-process submitter.
int cmd_connect(const std::vector<std::string>& args) {
  if (args.empty()) usage();
  const std::string& target = args[0];
  const std::size_t colon = target.rfind(':');
  if (colon == std::string::npos || colon == 0) {
    std::fprintf(stderr, "depchaos: connect wants HOST:PORT, got \"%s\"\n",
                 target.c_str());
    return 2;
  }
  const std::string host = target.substr(0, colon);
  const std::uint16_t port = static_cast<std::uint16_t>(
      parse_long_text("connect port ", target.substr(colon + 1), 1, 65535));
  const std::size_t clients =
      static_cast<std::size_t>(parse_long(args, "--clients=", 8, 0, 10'000));
  const std::size_t requests = static_cast<std::size_t>(
      parse_long(args, "--requests=", 32, 0, 1'000'000'000));
  const std::string mix = flag_value(args, "--mix=", "load");
  if (mix != "load" && mix != "mixed") usage();
  const std::uint64_t seed =
      static_cast<std::uint64_t>(parse_long(args, "--seed=", 1, 0, LLONG_MAX));
  // Empty = the server world's default exe (an empty Load payload).
  const std::string exe = flag_value(args, "--exe=", "");

  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> retries{0};
  std::atomic<std::uint64_t> request_errors{0};
  std::atomic<std::uint64_t> transport_errors{0};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> drivers;
  drivers.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    drivers.emplace_back([&, c] {
      try {
        svc::WireClient client(host, port);
        const svc::ClientId id = static_cast<svc::ClientId>(c + 1);
        std::mt19937_64 rng(seed * 1000003 + c);
        std::uniform_int_distribution<int> op(0, 9);
        for (std::size_t r = 0; r < requests; ++r) {
          const int pick = mix == "mixed" ? op(rng) : 0;
          for (;;) {
            try {
              if (pick >= 9) {
                client.shrinkwrap(id, exe);
              } else if (pick == 8) {
                client.whatif(id, exe);
              } else if (pick == 7) {
                client.query(id);
              } else {
                client.load(id, exe);
              }
              completed.fetch_add(1);
              break;
            } catch (const svc::Overloaded& overloaded) {
              retries.fetch_add(1);
              std::this_thread::sleep_for(std::chrono::duration<double>(
                  overloaded.retry_after_s()));
            } catch (const svc::WireError&) {
              // Server-reported request failure (bad exe, wrap error):
              // count it and keep driving, like the in-process demo.
              request_errors.fetch_add(1);
              break;
            }
          }
        }
      } catch (const std::exception& error) {
        // Connect failure or mid-run transport loss kills this driver
        // only; the run reports it rather than crashing.
        transport_errors.fetch_add(1);
        std::fprintf(stderr, "depchaos: client %zu: %s\n", c + 1,
                     error.what());
      }
    });
  }
  for (auto& driver : drivers) driver.join();
  const double elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  std::printf("%llu requests in %.3fs (%.0f req/s), %llu retries, "
              "%llu request errors, %llu transport errors\n",
              static_cast<unsigned long long>(completed.load()), elapsed,
              static_cast<double>(completed.load()) / elapsed,
              static_cast<unsigned long long>(retries.load()),
              static_cast<unsigned long long>(request_errors.load()),
              static_cast<unsigned long long>(transport_errors.load()));

  if (has_flag(args, "--shutdown")) {
    svc::WireClient admin(host, port);
    admin.shutdown();
    std::printf("server shutdown acknowledged\n");
  }
  return transport_errors.load() == 0 ? 0 : 1;
}

/// Rediscover the Pynamic app baked into an image world (worldgen writes it
/// under the default root): module i lives at
/// <root>/m<i>/lib/libpynamic_module_<i>.so, so probe upward until the
/// first miss. Returns false when the image carries no such app.
bool discover_pynamic_app(const vfs::FileSystem& fs,
                          workload::PynamicApp& app) {
  const std::string root = "/apps/pynamic";
  for (int i = 0;; ++i) {
    const std::string dir = root + "/m" + std::to_string(i) + "/lib";
    const std::string path =
        dir + "/libpynamic_module_" + std::to_string(i) + ".so";
    if (fs.peek(path) == nullptr) break;
    app.search_dirs.push_back(dir);
    app.module_paths.push_back(path);
  }
  app.exe_path = root + "/bigexe";
  return !app.module_paths.empty() && fs.peek(app.exe_path) != nullptr;
}

int cmd_launch(const std::vector<std::string>& args) {
  if (args.size() < 2) usage();
  core::SessionConfig config;
  config.latency = std::make_shared<vfs::NfsModel>();
  config.cluster.spindle_broadcast = has_flag(args, "--spindle");
  auto session = open_session(args, std::move(config));
  const int ranks =
      static_cast<int>(parse_long(args, "--ranks=", 512, 1, 10'000'000));

  const std::string engine = flag_value(args, "--engine=", "analytic");
  if (engine != "analytic" && engine != "sim") {
    std::fprintf(stderr,
                 "depchaos: unknown --engine=%s (want analytic or sim)\n",
                 engine.c_str());
    return 2;
  }
  const bool sim_engine = engine == "sim";
  if (!sim_engine) {
    // The simulator knobs would silently do nothing under the analytic
    // engine; refuse, mirroring the sandbox-flag checks below.
    for (const char* flag : {"--cache", "--negative-cache"}) {
      if (has_flag(args, flag)) {
        std::fprintf(stderr, "depchaos: %s requires --engine=sim\n", flag);
        return 2;
      }
    }
    for (const char* prefix :
         {"--dist=", "--seed=", "--waves=", "--straggler="}) {
      if (!flag_value(args, prefix, "").empty()) {
        std::fprintf(stderr, "depchaos: %s requires --engine=sim\n", prefix);
        return 2;
      }
    }
  }

  mds::ServiceModel service;
  const std::string dist = flag_value(args, "--dist=", "fixed");
  if (dist == "fixed") {
    service.dist = mds::Dist::Fixed;
  } else if (dist == "uniform") {
    service.dist = mds::Dist::Uniform;
  } else if (dist == "pareto") {
    service.dist = mds::Dist::Pareto;
  } else {
    std::fprintf(
        stderr,
        "depchaos: unknown --dist=%s (want fixed, uniform, or pareto)\n",
        dist.c_str());
    return 2;
  }
  service.seed = static_cast<std::uint64_t>(
      parse_long(args, "--seed=", 42, 0, LLONG_MAX));
  mds::CachePolicy cache;
  cache.negative_caching = has_flag(args, "--negative-cache");
  cache.enabled = cache.negative_caching || has_flag(args, "--cache");
  const int waves =
      static_cast<int>(parse_long(args, "--waves=", 1, 1, 10'000));
  const std::string straggler = flag_value(args, "--straggler=", "");
  std::vector<double> start_delays;
  if (!straggler.empty()) {
    const std::size_t colon = straggler.find(':');
    const int rank = static_cast<int>(parse_long_text(
        "--straggler=", straggler.substr(0, colon), 0, INT_MAX));
    const double delay_s =
        colon == std::string::npos
            ? 1.0
            : parse_double_text("--straggler=", straggler.substr(colon + 1),
                                0.0, 1e9);
    if (rank < 0 || rank >= ranks) {
      std::fprintf(stderr, "depchaos: --straggler rank %d out of [0, %d)\n",
                   rank, ranks);
      return 2;
    }
    start_delays.assign(static_cast<std::size_t>(ranks), 0.0);
    start_delays[static_cast<std::size_t>(rank)] = delay_s;
  }

  const std::string image_path = flag_value(args, "--sandbox=", "");
  core::Session::LaunchResult result;
  mds::SimResult sim;
  std::vector<double> wave_makespans;
  if (image_path.empty()) {
    // The sandbox-shaping flags would be silently meaningless on a bare
    // launch; refuse instead of printing storm numbers as if they applied
    // (--spindle is a cluster knob and works either way).
    for (const char* flag : {"--prestaged", "--overlay"}) {
      if (has_flag(args, flag)) {
        std::fprintf(stderr, "depchaos: %s requires --sandbox=<image>\n",
                     flag);
        return 2;
      }
    }
    for (const char* prefix :
         {"--mount=", "--mask=", "--waves=", "--straggler=", "--ranks-mix="}) {
      if (!flag_value(args, prefix, "").empty()) {
        std::fprintf(stderr, "depchaos: %s requires --sandbox=<image>\n",
                     prefix);
        return 2;
      }
    }
    if (sim_engine) {
      launch::SimOutcome out = launch::simulate_launch_queueing(
          session.fs(), session.loader(), args[1], session.env(), ranks,
          session.config().cluster, service, cache);
      result = out.launch;
      sim = std::move(out.sim);
      wave_makespans = std::move(out.wave_makespans);
    } else {
      result = session.launch(args[1], ranks);
    }
  } else {
    // Containerized launch: measure the rank op stream inside a per-rank
    // sandbox assembled from the image world.
    core::SandboxSpec spec;
    spec.image = load_image_world(image_path);
    spec.image_mount = flag_value(args, "--mount=", "/");
    spec.writable_image_overlay = has_flag(args, "--overlay");
    spec.mask = split_flag(args, "--mask=");
    spec.exe = args[1];
    launch::FleetConfig fleet;
    fleet.cluster = session.config().cluster;
    fleet.prestaged_image = has_flag(args, "--prestaged");
    const std::string ranks_mix = flag_value(args, "--ranks-mix=", "");
    workload::PynamicApp mix_app;
    if (!ranks_mix.empty()) {
      if (!spec.writable_image_overlay) {
        // The class divergence lives in each rank's private overlay; there
        // is nowhere to put it on a read-only sandbox.
        std::fprintf(stderr, "depchaos: --ranks-mix requires --overlay\n");
        return 2;
      }
      const int classes = static_cast<int>(
          parse_long_text("--ranks-mix=", ranks_mix, 1, INT_MAX));
      if (!discover_pynamic_app(*spec.image, mix_app)) {
        std::fprintf(stderr,
                     "depchaos: --ranks-mix needs a Pynamic app image "
                     "(no /apps/pynamic tree in %s)\n",
                     image_path.c_str());
        return 2;
      }
      fleet.rank_setup = [&mix_app, classes](core::Session& s, int r) {
        workload::apply_mpmd_rank(s.fs(), s.env(), mix_app, r, classes);
      };
    }
    if (sim_engine) {
      fleet.engine = launch::Engine::Queueing;
      fleet.service = service;
      fleet.cache = cache;
      fleet.start_delays = std::move(start_delays);
      fleet.sim_waves = std::max(1, waves);
      launch::SimOutcome out = launch::simulate_fleet_launch_sim(
          session, spec, args[1], ranks, fleet);
      result = out.launch;
      sim = std::move(out.sim);
      wave_makespans = std::move(out.wave_makespans);
    } else {
      result = session.launch_fleet(spec, args[1], ranks, fleet);
    }
  }
  std::printf("ranks=%d  meta_ops/rank=%llu  bytes/rank=%llu\n",
              result.nprocs,
              static_cast<unsigned long long>(result.meta_ops_per_rank),
              static_cast<unsigned long long>(result.bytes_per_rank));
  if (result.sandboxed) {
    std::printf(
        "sandboxed: shared-image ops=%llu  per-rank overlay ops=%llu\n",
        static_cast<unsigned long long>(result.shared_meta_ops_per_rank),
        static_cast<unsigned long long>(result.overlay_meta_ops_per_rank));
    if (result.classes_measured > 0) {
      std::printf("sandboxed: rank classes=%d  loader replays=%d\n",
                  result.classes_measured, result.ranks_measured);
    }
  }
  if (sim_engine) {
    std::printf("sim: server requests=%llu  batches=%llu  mean batch=%.1f  "
                "peak queue=%llu\n",
                static_cast<unsigned long long>(sim.server_requests),
                static_cast<unsigned long long>(sim.batches), sim.mean_batch,
                static_cast<unsigned long long>(sim.max_queue_depth));
    std::printf("sim: request latency p50=%.1fus p99=%.1fus max=%.0fus\n",
                sim.latency_p50_s * 1e6, sim.latency_p99_s * 1e6,
                sim.latency_max_s * 1e6);
    std::printf("sim: cache hits=%llu misses=%llu  node-local ops=%llu  "
                "relayed ops=%llu\n",
                static_cast<unsigned long long>(sim.cache_hits),
                static_cast<unsigned long long>(sim.cache_misses),
                static_cast<unsigned long long>(sim.local_ops),
                static_cast<unsigned long long>(sim.relayed_ops));
    if (wave_makespans.size() > 1) {
      // The stats above are the last (cache-warm) wave; the time-to-launch
      // line below is the cold first wave.
      for (std::size_t w = 0; w < wave_makespans.size(); ++w) {
        std::printf("sim: wave %zu metadata %.3f s%s\n", w + 1,
                    wave_makespans[w], w == 0 ? " (cold)" : " (warm cache)");
      }
    }
  }
  std::printf("time-to-launch: %.1f s (data %.1f + metadata %.1f)\n",
              result.total_time_s, result.data_time_s, result.meta_time_s);
  return result.load_succeeded ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  // `depchaos --help` and `depchaos <cmd> --help` both print the full
  // usage (stdout, exit 0) — every subcommand's flags are documented there.
  if (command == "--help" || command == "-h" || command == "help" ||
      has_flag(args, "--help") || has_flag(args, "-h")) {
    print_usage(stdout);
    return 0;
  }
  try {
    if (command == "worldgen") return cmd_worldgen(args);
    if (command == "libtree") return cmd_libtree(args);
    if (command == "ldd") return cmd_ldd(args);
    if (command == "shrinkwrap") return cmd_shrinkwrap(args);
    if (command == "whatif") return cmd_whatif(args);
    if (command == "verify") return cmd_verify(args);
    if (command == "patchelf") return cmd_patchelf(args);
    if (command == "launch") return cmd_launch(args);
    if (command == "sandbox") return cmd_sandbox(args);
    if (command == "mount") return cmd_mount(args);
    if (command == "serve") return cmd_serve(args);
    if (command == "connect") return cmd_connect(args);
  } catch (const Error& error) {
    std::fprintf(stderr, "depchaos: %s\n", error.what());
    return 1;
  } catch (const std::exception& error) {
    // Config validation throws std::invalid_argument; print it like any
    // other user error instead of terminating.
    std::fprintf(stderr, "depchaos: %s\n", error.what());
    return 1;
  }
  usage();
}
