// End-to-end Spack-style workflow: reparse package.py recipes, concretize an
// abstract spec into a hashed DAG, install it into a store, and shrinkwrap
// the resulting application — the §II-D store model meeting §IV's tool.
//
//   $ ./examples/spack_workflow

#include <cstdio>

#include "depchaos/core/world.hpp"
#include "depchaos/pkg/store.hpp"
#include "depchaos/spack/concretizer.hpp"
#include "depchaos/spack/install.hpp"

using namespace depchaos;

int main() {
  // 1. A small package repository, written in (a subset of) Spack's Python
  //    DSL and reparsed by the C++ reader.
  spack::Repo repo;
  repo.add_package_py(R"PY(
class Zlib(Package):
    homepage = "https://zlib.net"
    version("1.2.12")
    version("1.2.11")
)PY");
  repo.add_package_py(R"PY(
class Hdf5(Package):
    version("1.12.1")
    version("1.10.8")
    variant("mpi", default=True, description="Enable MPI")
    depends_on("zlib")
    depends_on("mpi", when="+mpi")
)PY");
  repo.add_package_py(R"PY(
class Openmpi(Package):
    version("4.1.1")
    provides("mpi")
)PY");
  repo.add_package_py(R"PY(
class Lifesim(Package):
    """A toy simulation code with the usual HPC tangle."""
    version("2.0")
    version("1.9")
    variant("mpi", default=True, description="parallel build")
    depends_on("hdf5@1.10:+mpi", when="+mpi")
    depends_on("hdf5@1.10:~mpi", when="~mpi")
)PY");

  // 2. Concretize a command-line spec.
  spack::ConcretizerOptions options;
  options.virtual_defaults["mpi"] = "openmpi";
  const spack::Concretizer concretizer(repo, options);
  const auto dag = concretizer.concretize("lifesim@2.0 ^zlib@1.2.12");

  std::printf("concretized DAG (%zu packages):\n", dag.size());
  for (const auto& name : dag.install_order()) {
    const auto& node = dag.at(name);
    std::printf("  %s/%s  deps=[", node.render().c_str(),
                dag.dag_hash(name).substr(0, 8).c_str());
    for (std::size_t i = 0; i < node.deps.size(); ++i) {
      std::printf("%s%s", i ? ", " : "", node.deps[i].c_str());
    }
    std::printf("]\n");
  }

  // 3. Install into a store inside a WorldBuilder's world: hashed prefixes,
  //    RPATH-wired binaries.
  core::WorldBuilder builder;
  pkg::store::Store store(builder.fs(), "/opt/spack/store");
  const auto result = spack::install_dag(store, dag);
  std::printf("\ninstalled prefixes:\n");
  for (const auto& [name, prefix] : result.prefixes) {
    std::printf("  %s -> %s\n", name.c_str(), prefix.c_str());
  }

  // 4. Open a session on the installed world, load, then shrinkwrap.
  auto session = builder.target(result.exe_path).build();
  const auto before = session.load();
  std::printf("\nas-built load: %s, %llu metadata syscalls\n",
              before.success ? "ok" : "FAILED",
              static_cast<unsigned long long>(before.stats.metadata_calls()));

  const auto wrap = session.shrinkwrap();
  const auto after = session.load();
  std::printf("shrinkwrapped load: %s, %llu metadata syscalls (%zu absolute "
              "needed entries)\n",
              after.success ? "ok" : "FAILED",
              static_cast<unsigned long long>(after.stats.metadata_calls()),
              wrap.new_needed.size());
  return (before.success && after.success && wrap.ok()) ? 0 : 1;
}
