// Quickstart: build a small store-model application, look at its dependency
// tree, shrinkwrap it, and verify the result.
//
//   $ ./examples/quickstart
//
// Walks through the core depchaos API: compose a world with
// core::WorldBuilder, then drive it with the core::Session verbs
// (libtree, load, shrinkwrap, verify).

#include <cstdio>

#include "depchaos/core/world.hpp"

using namespace depchaos;

int main() {
  // 1. A store-style layout: every package in its own prefix, wired
  //    together with RPATH entries on the executable.
  auto session =
      core::WorldBuilder()
          .install("/store/zlib/lib/libz.so", elf::make_library("libz.so"))
          .install("/store/hdf5/lib/libhdf5.so",
                   elf::make_library("libhdf5.so", {"libz.so"}))
          .install("/store/app/bin/sim",
                   elf::make_executable(
                       {"libhdf5.so"}, /*runpath=*/{},
                       /*rpath=*/{"/store/app/lib", "/store/hdf5/lib",
                                  "/store/zlib/lib"}))
          .build();

  // 2. Load it the way ld.so would and render the tree (libtree-style).
  std::printf("--- before shrinkwrap ---\n%s\n", session.libtree().c_str());

  const auto before = session.load();
  std::printf("metadata syscalls at startup: %llu (failed probes: %llu)\n\n",
              static_cast<unsigned long long>(before.stats.metadata_calls()),
              static_cast<unsigned long long>(before.stats.failed_probes));

  // 3. Shrinkwrap: freeze the resolved closure into absolute DT_NEEDED
  //    entries on the executable.
  const auto wrap = session.shrinkwrap();
  std::printf("--- shrinkwrap rewrote DT_NEEDED ---\n");
  for (const auto& entry : wrap.new_needed) {
    std::printf("  needed %s\n", entry.c_str());
  }

  // 4. Load again: every dependency is one direct open; a hostile
  //    LD_LIBRARY_PATH can no longer redirect anything.
  const auto after = session.load(
      "", loader::Environment::with_library_path({"/somewhere/hostile"}));
  std::printf("\n--- after shrinkwrap ---\n%s",
              shrinkwrap::render_tree(after).c_str());
  std::printf("metadata syscalls at startup: %llu (failed probes: %llu)\n",
              static_cast<unsigned long long>(after.stats.metadata_calls()),
              static_cast<unsigned long long>(after.stats.failed_probes));

  // 5. Audit.
  const auto audit = session.verify();
  std::printf("verify: %s\n", audit.ok ? "OK — fully frozen" : "NOT frozen");
  return audit.ok ? 0 : 1;
}
