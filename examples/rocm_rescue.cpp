// §V-B.1 walkthrough: the ROCm module mix-up, and the shrinkwrap rescue.
//
// Three innocuous decisions — RPATH on the app, RUNPATH inside the vendor
// libraries, LD_LIBRARY_PATH set by an environment module — combine so that
// loading the app with the WRONG module version mixes 4.5 and 4.3 internals
// and segfaults. Shrinkwrap freezes the build-time resolution.
//
//   $ ./examples/rocm_rescue

#include <cstdio>

#include "depchaos/core/world.hpp"

using namespace depchaos;

namespace {

void show_load(const char* label, const loader::LoadReport& report,
               const workload::RocmScenario& scenario) {
  std::printf("%s\n", label);
  for (const auto& obj : report.load_order) {
    if (obj.depth == 0) continue;
    std::printf("  %-28s <- %-40s [%s]\n", obj.name.c_str(), obj.path.c_str(),
                std::string(loader::how_found_name(obj.how)).c_str());
  }
  std::printf("  => %s\n\n", workload::rocm_versions_mixed(report, scenario)
                                 ? "MIXED VERSIONS (segfault in production)"
                                 : "consistent");
}

}  // namespace

int main() {
  core::WorldBuilder builder;
  auto session = builder.rocm().build();
  const auto& scenario = *builder.rocm_info();

  show_load("# module load rocm/4.5; ./gpu_sim     (clean environment)",
            session.load("", scenario.clean_env), scenario);

  show_load("# module load rocm/4.3; ./gpu_sim     (stale module loaded)",
            session.load("", scenario.wrong_module_env), scenario);

  std::printf("# shrinkwrap gpu_sim\n");
  const auto wrap = session.shrinkwrap();
  for (const auto& entry : wrap.new_needed) {
    std::printf("  frozen: %s\n", entry.c_str());
  }
  std::printf("\n");

  const auto fixed = session.load("", scenario.wrong_module_env);
  show_load("# module load rocm/4.3; ./gpu_sim     (wrapped binary)", fixed,
            scenario);
  return workload::rocm_versions_mixed(fixed, scenario) ? 1 : 0;
}
