// Listing 1 reproduction: the samba dbwrap_tool trace.
//
// A library four levels down (libsamba-modules-samba4) was built without a
// RUNPATH. Its dependency libsamba-debug-samba4 is NOT findable by its own
// search — the program only works because an earlier subtree already loaded
// the file and the loader's soname cache supplies it. libtree's pure-search
// annotations expose the landmine.
//
//   $ ./examples/libtree_demo

#include <cstdio>

#include "depchaos/loader/loader.hpp"
#include "depchaos/shrinkwrap/libtree.hpp"
#include "depchaos/shrinkwrap/shrinkwrap.hpp"
#include "depchaos/workload/scenarios.hpp"

using namespace depchaos;

int main() {
  vfs::FileSystem fs;
  const auto scenario = workload::make_samba_scenario(fs);

  loader::SearchConfig config;
  config.classify_cache_hits = true;  // annotate with pure-search outcomes
  loader::Loader loader(fs, config);

  const auto report = loader.load(scenario.exe_path);
  std::printf("$ libtree %s\n%s\n", scenario.exe_path.c_str(),
              shrinkwrap::render_tree(report).c_str());

  std::printf("the program %s — but note the 'not found (satisfied by "
              "earlier load)' line:\nif the earlier subtree stops linking "
              "that library, this binary breaks at a distance.\n\n",
              report.success ? "loads successfully" : "FAILS to load");

  // Shrinkwrap removes the landmine: every path is frozen on the top level.
  const auto wrap = shrinkwrap::shrinkwrap(fs, loader, scenario.exe_path);
  std::printf("after shrinkwrap (%zu absolute needed entries):\n%s",
              wrap.new_needed.size(),
              shrinkwrap::libtree(fs, loader, scenario.exe_path).c_str());
  return report.success && wrap.ok() ? 0 : 1;
}
