// Listing 1 reproduction: the samba dbwrap_tool trace.
//
// A library four levels down (libsamba-modules-samba4) was built without a
// RUNPATH. Its dependency libsamba-debug-samba4 is NOT findable by its own
// search — the program only works because an earlier subtree already loaded
// the file and the loader's soname cache supplies it. libtree's pure-search
// annotations expose the landmine.
//
//   $ ./examples/libtree_demo

#include <cstdio>

#include "depchaos/core/world.hpp"

using namespace depchaos;

int main() {
  loader::SearchConfig search;
  search.classify_cache_hits = true;  // annotate with pure-search outcomes
  auto session = core::WorldBuilder().search(search).samba().build();

  const auto report = session.load();
  std::printf("$ libtree %s\n%s\n", session.default_exe().c_str(),
              shrinkwrap::render_tree(report).c_str());

  std::printf("the program %s — but note the 'not found (satisfied by "
              "earlier load)' line:\nif the earlier subtree stops linking "
              "that library, this binary breaks at a distance.\n\n",
              report.success ? "loads successfully" : "FAILS to load");

  // Shrinkwrap removes the landmine: every path is frozen on the top level.
  const auto wrap = session.shrinkwrap();
  std::printf("after shrinkwrap (%zu absolute needed entries):\n%s",
              wrap.new_needed.size(), session.libtree().c_str());
  return report.success && wrap.ok() ? 0 : 1;
}
