// §II guided tour: one application delivered through every distribution
// model in the paper's taxonomy, on one simulated machine — the layered
// reality of §II-E ("any given HPC system is usually comprised of layered
// instances of the FHS model and some form of the store model").
//
//   $ ./examples/hpc_stack_tour

#include <cstdio>

#include "depchaos/core/world.hpp"
#include "depchaos/pkg/bundle.hpp"
#include "depchaos/pkg/fhs.hpp"
#include "depchaos/pkg/hermetic.hpp"
#include "depchaos/pkg/modules.hpp"
#include "depchaos/pkg/store.hpp"

using namespace depchaos;

namespace {
void report_line(const char* model, const loader::LoadReport& report) {
  std::printf("  %-22s %s, %llu metadata syscalls, dep found via [%s]\n",
              model, report.success ? "loads" : "FAILS",
              static_cast<unsigned long long>(report.stats.metadata_calls()),
              report.load_order.size() > 1
                  ? std::string(loader::how_found_name(report.load_order[1].how))
                        .c_str()
                  : "-");
}
}  // namespace

int main() {
  std::printf("one app (needs libphysics.so), five delivery models:\n\n");

  // ---- 1. Traditional FHS (§II-A): well-known directories.
  {
    core::WorldBuilder builder;
    pkg::fhs::Installer installer(builder.fs());
    pkg::fhs::Package pkg;
    pkg.name = "physics";
    pkg.version = "1.0";
    pkg.files.push_back({"usr/lib/libphysics.so", "",
                         elf::make_library("libphysics.so")});
    pkg.files.push_back(
        {"usr/bin/sim", "", elf::make_executable({"libphysics.so"})});
    installer.install(pkg);
    auto session = builder.target("/usr/bin/sim").build();
    report_line("FHS", session.load());
  }

  // ---- 2. Bundled AppDir (§II-B): $ORIGIN-relative vendoring.
  {
    core::WorldBuilder builder;
    pkg::bundle::BundleSpec spec;
    spec.name = "sim";
    spec.exe = elf::make_executable({"libphysics.so"});
    spec.libs = {{"libphysics.so", elf::make_library("libphysics.so")}};
    const auto bundle =
        pkg::bundle::create_bundle(builder.fs(), spec, "/home/user");
    auto session = builder.target(bundle.exe_path).build();
    report_line("Bundled (AppDir)", session.load());
  }

  // ---- 3. Hermetic root (§II-C): committed layers, FHS interior.
  {
    pkg::hermetic::Image image;
    image.write_file("/usr/lib/libphysics.so",
                     elf::serialize(elf::make_library("libphysics.so")));
    image.write_file("/usr/bin/sim",
                     elf::serialize(elf::make_executable({"libphysics.so"})));
    image.commit("deploy sim");
    core::Session session(image.materialize(), {}, "/usr/bin/sim");
    report_line("Hermetic root", session.load());
  }

  // ---- 4. Store model (§II-D): hashed prefixes + RPATH wiring.
  {
    core::WorldBuilder builder;
    pkg::store::Store store(builder.fs());
    pkg::store::PackageSpec lib;
    lib.name = "physics";
    lib.version = "1.0";
    lib.files.push_back(
        {"lib/libphysics.so", elf::make_library("libphysics.so"), ""});
    const auto& lib_installed = store.add(lib);
    pkg::store::PackageSpec app;
    app.name = "sim";
    app.version = "1.0";
    app.deps = {lib_installed.prefix};
    app.files.push_back(
        {"bin/sim", elf::make_executable({"libphysics.so"}), ""});
    const auto& app_installed = store.add(app);
    auto session = builder.target(app_installed.prefix + "/bin/sim").build();
    report_line("Store (Spack/Nix)", session.load());
  }

  // ---- 5. Module model (§II-E): env-mutated search, the fragile glue.
  {
    auto session =
        core::WorldBuilder()
            .install("/usr/tce/physics-1.0/lib/libphysics.so",
                     elf::make_library("libphysics.so"))
            .install("/usr/workspace/bin/sim",
                     elf::make_executable({"libphysics.so"}))
            .target("/usr/workspace/bin/sim")
            .build();
    pkg::modules::ModuleSystem modules;
    pkg::modules::Module mod;
    mod.name = "physics/1.0";
    mod.ld_library_path_prepend = {"/usr/tce/physics-1.0/lib"};
    modules.add(mod);
    modules.load("physics/1.0");
    report_line("Modules (loaded)", session.load("", modules.environment()));
    modules.unload("physics/1.0");
    session.invalidate();
    report_line("Modules (unloaded)",
                session.load("", modules.environment()));
  }

  std::printf(
      "\nthe module row is the §II-E fragility: same binary, same machine,\n"
      "different environment -> broken. Shrinkwrap exists to delete that\n"
      "row from the failure matrix.\n");
  return 0;
}
