// Fig 6 at example scale: simulate launching a Pynamic-like MPI job from
// NFS, before and after shrinkwrapping, across a rank sweep.
//
//   $ ./examples/pynamic_launch [num_modules]

#include <cstdio>
#include <cstdlib>

#include "depchaos/core/world.hpp"

using namespace depchaos;

int main(int argc, char** argv) {
  workload::PynamicConfig config;
  config.num_modules = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 300;
  config.exe_extra_bytes = 64ull << 20;

  core::WorldBuilder builder;
  auto session = builder.pynamic(config).nfs().build();
  const auto& app = *builder.pynamic_info();

  std::printf("pynamic with %zu modules, %zu search dirs\n\n",
              app.module_paths.size(), app.search_dirs.size());

  const std::vector<int> ranks = {64, 256, 1024};
  const auto normal = session.launch_sweep("", ranks);
  if (!session.shrinkwrap().ok()) {
    std::printf("shrinkwrap failed\n");
    return 1;
  }
  const auto wrapped = session.launch_sweep("", ranks);

  std::printf("%6s %12s %12s %9s   (meta ops/rank: %llu -> %llu)\n", "ranks",
              "normal (s)", "wrapped (s)", "speedup",
              static_cast<unsigned long long>(normal[0].meta_ops_per_rank),
              static_cast<unsigned long long>(wrapped[0].meta_ops_per_rank));
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    std::printf("%6d %12.1f %12.1f %8.1fx\n", ranks[i],
                normal[i].total_time_s, wrapped[i].total_time_s,
                normal[i].total_time_s / wrapped[i].total_time_s);
  }
  return 0;
}
