// Table I: "Properties of RPATH and RUNPATH" — derived from the loader
// simulation rather than asserted: each cell is probed with a concrete
// filesystem layout and the observed behaviour is printed.
//
//   Property                    RPATH   RUNPATH
//   Before LD_LIBRARY_PATH      Yes     No
//   After  LD_LIBRARY_PATH      No      Yes
//   Propagates                  Yes     No

#include "bench_util.hpp"
#include "depchaos/core/world.hpp"
#include "depchaos/elf/patcher.hpp"

namespace {

using namespace depchaos;
using elf::make_executable;
using elf::make_library;

/// Probe: does a search-path entry of the given flavor win over
/// LD_LIBRARY_PATH?
bool beats_ld_library_path(loader::Dialect dialect, bool use_rpath) {
  auto session =
      core::WorldBuilder()
          .install("/sp/libx.so", make_library("libx.so"))
          .install("/env/libx.so", make_library("libx.so"))
          .install("/bin/app",
                   make_executable({"libx.so"},
                                   use_rpath ? std::vector<std::string>{}
                                             : std::vector<std::string>{"/sp"},
                                   use_rpath ? std::vector<std::string>{"/sp"}
                                             : std::vector<std::string>{}))
          .dialect(dialect)
          .environment(loader::Environment::with_library_path({"/env"}))
          .build();
  const auto report = session.load();
  return report.success && report.load_order[1].path == "/sp/libx.so";
}

/// Probe: does the executable's search path apply to a library's own
/// dependency lookups?
bool propagates(loader::Dialect dialect, bool use_rpath) {
  auto session =
      core::WorldBuilder()
          .install("/deep/liby.so", make_library("liby.so"))
          .install("/l/libx.so", make_library("libx.so", {"liby.so"}))
          .install(
              "/bin/app",
              make_executable({"libx.so"},
                              use_rpath ? std::vector<std::string>{}
                                        : std::vector<std::string>{"/l", "/deep"},
                              use_rpath ? std::vector<std::string>{"/l", "/deep"}
                                        : std::vector<std::string>{}))
          .dialect(dialect)
          .build();
  return session.load().success;
}

void print_table(loader::Dialect dialect, const char* name) {
  using depchaos::bench::heading;
  heading(std::string("Table I — properties of RPATH and RUNPATH (") + name +
          ")");
  const auto yes_no = [](bool value) { return value ? "Yes" : "No "; };
  std::printf("  %-28s %-8s %-8s\n", "Property", "RPATH", "RUNPATH");
  std::printf("  %-28s %-8s %-8s\n", "Before LD_LIBRARY_PATH",
              yes_no(beats_ld_library_path(dialect, true)),
              yes_no(beats_ld_library_path(dialect, false)));
  std::printf("  %-28s %-8s %-8s\n", "After LD_LIBRARY_PATH",
              yes_no(!beats_ld_library_path(dialect, true)),
              yes_no(!beats_ld_library_path(dialect, false)));
  std::printf("  %-28s %-8s %-8s\n", "Propagates",
              yes_no(propagates(dialect, true)),
              yes_no(propagates(dialect, false)));
}

void BM_TableIProbes(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(beats_ld_library_path(loader::Dialect::Glibc, true));
    benchmark::DoNotOptimize(propagates(loader::Dialect::Glibc, false));
  }
}
BENCHMARK(BM_TableIProbes)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_table(loader::Dialect::Glibc, "glibc — matches the paper");
  print_table(loader::Dialect::Musl,
              "musl — the §IV meld: both inherited, both after "
              "LD_LIBRARY_PATH");
  return depchaos::bench::run_benchmarks(argc, argv);
}
