// Sandbox fleets: container views over one host world, persisted as
// snapshot v2 (DCWORLD2, base + per-view deltas).
//
// The deployment-substrate story behind the paper's chaos: a cluster
// schedules N jobs, each in its own mount namespace — the squashfs app
// image bound read-only behind a writable per-job overlay, the leaky host
// /usr/lib masked away, per-job scratch — all CoW forks of one host
// world. Persisting that fleet used to cost N full DCWORLD1 images;
// save_fleet stores the base and the shared app image once plus each
// view's layer delta, so the fleet saves in O(base + Σ delta).
//
// Acceptance gates (exit non-zero on regression):
//  * the v2 image is ≥10x smaller than N full v1 images for a 64-fork
//    fleet, and stays within O(base + Σ delta) (bounded per-view bytes);
//  * load_fleet restores every view bit-identically (save_world bytes);
//  * the container failure modes reproduce: the host library leaks under
//    the unmasked stacking and masking fixes the load.
//
// DEPCHAOS_SMOKE=1 shrinks the host world (the fleet stays at 64).

#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "depchaos/core/world.hpp"
#include "depchaos/vfs/snapshot.hpp"
#include "depchaos/workload/scenarios.hpp"

namespace {

using namespace depchaos;

constexpr std::size_t kFleet = 64;

bool smoke_mode() { return std::getenv("DEPCHAOS_SMOKE") != nullptr; }

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct FleetRig {
  core::Session host;
  workload::ContainerLeakScenario scenario;
  std::vector<core::Session> jobs;
};

core::Session make_host_session(workload::ContainerLeakScenario& scenario) {
  workload::InstalledSystemConfig config;
  if (smoke_mode()) {
    config.num_binaries = 200;
    config.num_shared_objects = 120;
  }
  core::WorldBuilder builder;
  builder.debian(config);
  scenario = workload::make_container_leak_scenario(builder.fs());
  core::SessionConfig session_config;
  session_config.search = scenario.search;
  builder.search(session_config.search);
  return builder.build();
}

core::Session::SandboxSpec job_spec(
    const workload::ContainerLeakScenario& scenario, bool masked) {
  core::Session::SandboxSpec spec;
  spec.image = scenario.image;
  spec.image_mount = scenario.image_mount;
  spec.exe = scenario.exe;
  spec.writable_image_overlay = true;
  if (masked) spec.mask = {scenario.host_lib_dir};
  spec.scratch = {"/tmp/job"};
  return spec;
}

FleetRig make_fleet() {
  workload::ContainerLeakScenario scenario;
  core::Session host = make_host_session(scenario);
  FleetRig rig{std::move(host), std::move(scenario), {}};
  rig.jobs.reserve(kFleet);
  const auto spec = job_spec(rig.scenario, /*masked=*/true);
  for (std::size_t j = 0; j < kFleet; ++j) {
    core::Session job = rig.host.sandbox(spec);
    // Per-job divergence in the overlay: a config write and a scratch log.
    job.fs().write_file(rig.scenario.image_mount + "/etc/job.conf",
                        "job " + std::to_string(j));
    job.fs().write_file("/tmp/job/rank", std::to_string(j));
    rig.jobs.push_back(std::move(job));
  }
  return rig;
}

int print_report() {
  using depchaos::bench::fmt;
  using depchaos::bench::heading;
  using depchaos::bench::row;

  heading("Container scenario — wrong library under a specific mount stacking");
  workload::ContainerLeakScenario scenario;
  core::Session host = make_host_session(scenario);
  core::Session leaking = host.sandbox(job_spec(scenario, /*masked=*/false));
  const auto leaky_report = leaking.load();
  const bool leaked = leaky_report.success &&
                      workload::container_host_leaked(leaky_report, scenario);
  row("host copy leaks through unmasked " + scenario.host_lib_dir,
      leaked ? "yes (wrong library bound)" : "NO — REGRESSION");
  core::Session fixed = host.sandbox(job_spec(scenario, /*masked=*/true));
  const auto fixed_report = fixed.load();
  const bool mask_fixes =
      fixed_report.success &&
      !workload::container_host_leaked(fixed_report, scenario);
  row("masking the host dir fixes the load",
      mask_fixes ? "yes (image copy bound)" : "NO — REGRESSION");

  heading("Fleet persistence — snapshot v2 vs per-view full images");
  FleetRig rig = make_fleet();
  const std::string base_v1 = vfs::save_world(rig.host.fs());
  const std::string image_v1 = vfs::save_world(*rig.scenario.image);

  auto start = std::chrono::steady_clock::now();
  std::size_t v1_total = 0;
  std::vector<std::string> v1_images;
  v1_images.reserve(rig.jobs.size());
  for (const auto& job : rig.jobs) {
    v1_images.push_back(vfs::save_world(job.fs()));
    v1_total += v1_images.back().size();
  }
  const double v1_seconds = seconds_since(start);

  std::vector<const vfs::FileSystem*> views;
  views.reserve(rig.jobs.size());
  for (const auto& job : rig.jobs) views.push_back(&job.fs());
  start = std::chrono::steady_clock::now();
  const std::string v2 = vfs::save_fleet(rig.host.fs(), views);
  const double v2_seconds = seconds_since(start);

  row("fleet size", std::to_string(kFleet) + " sandboxes");
  row("host world (v1)", fmt(base_v1.size() / 1024.0, 1) + " KiB");
  row("app image (v1)", fmt(image_v1.size() / 1024.0, 1) + " KiB");
  row("v1: N full images", fmt(v1_total / 1024.0, 1) + " KiB in " +
                               fmt(v1_seconds * 1e3, 1) + " ms");
  row("v2: base + deltas", fmt(v2.size() / 1024.0, 1) + " KiB in " +
                               fmt(v2_seconds * 1e3, 1) + " ms");
  const double shrink =
      v2.empty() ? 0.0 : static_cast<double>(v1_total) / v2.size();
  row("v2 shrink factor", fmt(shrink, 1) + "x");
  const std::size_t overhead =
      v2.size() > base_v1.size() + image_v1.size()
          ? v2.size() - base_v1.size() - image_v1.size()
          : 0;
  row("per-view delta bytes", fmt(overhead / double(kFleet), 1) + " B");

  start = std::chrono::steady_clock::now();
  auto fleet = vfs::load_fleet(v2);
  const double load_seconds = seconds_since(start);
  row("load_fleet", fmt(load_seconds * 1e3, 1) + " ms");
  bool bit_identical = fleet.views.size() == rig.jobs.size();
  for (std::size_t j = 0; bit_identical && j < fleet.views.size(); ++j) {
    bit_identical = vfs::save_world(fleet.views[j]) == v1_images[j];
  }
  row("views restore bit-identically",
      bit_identical ? "yes" : "NO — REGRESSION");

  heading("acceptance gates");
  const bool gate_shrink = shrink >= 10.0;
  row("v2 >= 10x smaller than N full images",
      gate_shrink ? "PASS (" + fmt(shrink, 1) + "x)" : "FAIL");
  // O(base + sum-of-delta): the image costs base + app once, plus a
  // bounded per-view delta (mount lines, overlay/scratch writes, the host
  // mountpoint mkdirs) — NOT another copy of the world per view.
  const bool gate_delta =
      v2.size() < (base_v1.size() + image_v1.size()) * 3 / 2 +
                      kFleet * 8192;
  row("v2 within O(base + sum-of-delta) bound",
      gate_delta ? "PASS" : "FAIL");
  row("bit-identical restore gate",
      bit_identical ? "PASS" : "FAIL");
  const bool scenario_ok = leaked && mask_fixes;
  row("container scenario gate", scenario_ok ? "PASS" : "FAIL");
  return (gate_shrink && gate_delta && bit_identical && scenario_ok) ? 0 : 1;
}

void BM_SandboxCreate(benchmark::State& state) {
  workload::ContainerLeakScenario scenario;
  core::Session host = make_host_session(scenario);
  const auto spec = job_spec(scenario, /*masked=*/true);
  for (auto _ : state) {
    core::Session job = host.sandbox(spec);
    benchmark::DoNotOptimize(job.fs().inode_count());
  }
}
BENCHMARK(BM_SandboxCreate)->Unit(benchmark::kMicrosecond);

void BM_FleetSaveV2(benchmark::State& state) {
  FleetRig rig = make_fleet();
  std::vector<const vfs::FileSystem*> views;
  for (const auto& job : rig.jobs) views.push_back(&job.fs());
  for (auto _ : state) {
    benchmark::DoNotOptimize(vfs::save_fleet(rig.host.fs(), views).size());
  }
}
BENCHMARK(BM_FleetSaveV2)->Unit(benchmark::kMillisecond);

void BM_FleetSaveV1PerView(benchmark::State& state) {
  FleetRig rig = make_fleet();
  for (auto _ : state) {
    std::size_t total = 0;
    for (const auto& job : rig.jobs) total += vfs::save_world(job.fs()).size();
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_FleetSaveV1PerView)->Unit(benchmark::kMillisecond);

void BM_FleetLoad(benchmark::State& state) {
  FleetRig rig = make_fleet();
  std::vector<const vfs::FileSystem*> views;
  for (const auto& job : rig.jobs) views.push_back(&job.fs());
  const std::string v2 = vfs::save_fleet(rig.host.fs(), views);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vfs::load_fleet(v2).views.size());
  }
}
BENCHMARK(BM_FleetLoad)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const int failures = print_report();
  const int bench_rc = depchaos::bench::run_benchmarks(argc, argv);
  return failures ? failures : bench_rc;
}
