// Launch-storm metadata contention as a DISCRETE-EVENT QUEUEING MODEL
// (src/mds), cross-checked against the closed-form storm arithmetic the
// paper's Fig 6 uses.
//
// The analytic engine prices a P-rank storm as ops * cost * P^gamma; the
// queueing engine replays the measured per-rank op stream through a
// simulated metadata server (request queue, batch coalescing, service
// distribution, client caches, Spindle/pre-staging topologies). On the
// regime the formula covers — homogeneous fleet, fixed service time, no
// client caching — the two must agree; everywhere else the simulator
// answers questions the formula cannot express.
//
// Acceptance gates (exit non-zero on regression):
//  * the queueing engine reproduces the Fig 6 sweep on all three
//    substrates (bare host, containerized, container+shrinkwrap) within
//    5% of the analytic metadata times (it is exact today);
//  * formula-inexpressible #1 — cache-warm second wave: with negative
//    caching on, relaunching the same fleet costs <20% of the cold wave
//    while the formula prices every wave identically;
//  * formula-inexpressible #2 — straggler tail: a rank starting after
//    the storm drains stretches the makespan past its delay but finishes
//    its stream contention-free, strictly under delay + cold storm —
//    neither effect exists on a P^gamma surface;
//  * fixed seed => bitwise-identical results across fresh simulators
//    (pareto service), different seed => different makespan.
//
// DEPCHAOS_SMOKE=1 shrinks the app and the rank sweep.

#include <cmath>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "depchaos/core/world.hpp"
#include "depchaos/launch/launch.hpp"
#include "depchaos/mds/sim.hpp"
#include "depchaos/workload/scenarios.hpp"

namespace {

using namespace depchaos;

bool smoke_mode() { return std::getenv("DEPCHAOS_SMOKE") != nullptr; }

workload::PynamicConfig app_config() {
  workload::PynamicConfig config;
  if (smoke_mode()) {
    config.num_modules = 100;
    config.exe_extra_bytes = 4ull << 20;
  } else {
    // Bounded full mode: the event count is ops/rank * ranks, and a
    // 900-module stream at 2048 ranks would be ~1e9 heap events.
    config.num_modules = 180;
    config.exe_extra_bytes = 8ull << 20;
  }
  return config;
}

std::vector<int> rank_sweep() {
  return smoke_mode() ? std::vector<int>{64, 256, 512}
                      : std::vector<int>{128, 512, 1024};
}

core::SandboxSpec container_spec(
    const workload::ContainerLaunchScenario& scenario, bool wrapped) {
  core::SandboxSpec spec;
  spec.image = wrapped ? scenario.wrapped_image : scenario.image;
  spec.image_mount = scenario.image_mount;
  spec.writable_image_overlay = true;
  spec.exe = scenario.exe;
  return spec;
}

bool within(double sim, double analytic, double tolerance) {
  if (analytic == 0.0) return sim == 0.0;
  return std::fabs(sim / analytic - 1.0) <= tolerance;
}

int print_report() {
  using depchaos::bench::fmt;
  using depchaos::bench::heading;
  using depchaos::bench::row;

  const auto ranks = rank_sweep();
  const auto config = app_config();

  // ---- substrate 1: bare host, both engines over the same stream -------
  core::WorldBuilder builder;
  auto bare = builder.pynamic(config).nfs().build();
  const auto bare_analytic = bare.launch_sweep("", ranks);
  const auto bare_sim = launch::scaling_sweep_queueing(
      bare.fs(), bare.loader(), bare.default_exe(), bare.env(), ranks,
      bare.config().cluster);

  // ---- substrates 2+3: containerized, bare image vs wrapped image ------
  const auto scenario = workload::make_container_launch_scenario(config);
  auto host = core::WorldBuilder().nfs().build();
  const auto spec_normal = container_spec(scenario, /*wrapped=*/false);
  const auto spec_wrapped = container_spec(scenario, /*wrapped=*/true);
  launch::FleetConfig fleet;
  fleet.cluster = host.config().cluster;
  std::vector<core::Session::LaunchResult> cont_analytic, wrap_analytic;
  std::vector<launch::SimOutcome> cont_sim, wrap_sim;
  for (const int r : ranks) {
    cont_analytic.push_back(host.launch_fleet(spec_normal, "", r, fleet));
    wrap_analytic.push_back(host.launch_fleet(spec_wrapped, "", r, fleet));
    cont_sim.push_back(
        launch::simulate_fleet_launch_sim(host, spec_normal, "", r, fleet));
    wrap_sim.push_back(
        launch::simulate_fleet_launch_sim(host, spec_wrapped, "", r, fleet));
  }

  heading("Fig 6, queueing engine vs closed form — three substrates");
  row("modules / needed entries",
      std::to_string(scenario.app.module_paths.size()));
  row("meta ops per rank (bare)",
      std::to_string(bare_analytic[0].meta_ops_per_rank));
  row("meta ops per rank (container wrapped)",
      std::to_string(wrap_analytic[0].meta_ops_per_rank));

  std::printf("\n  %6s  %-16s %14s %14s %9s\n", "ranks", "substrate",
              "formula (s)", "simulated (s)", "drift");
  bool gate_bridge = true;
  const auto bridge_row = [&](int r, const char* substrate, double analytic,
                              double sim) {
    const double drift = analytic == 0.0 ? 0.0 : sim / analytic - 1.0;
    gate_bridge = gate_bridge && within(sim, analytic, 0.05);
    std::printf("  %6d  %-16s %14.2f %14.2f %8.3f%%\n", r, substrate,
                analytic, sim, drift * 100.0);
    depchaos::bench::capture(
        "ranks=" + std::to_string(r) + " " + substrate,
        fmt(analytic, 3) + "s formula / " + fmt(sim, 3) + "s simulated");
  };
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    bridge_row(ranks[i], "bare", bare_analytic[i].meta_time_s,
               bare_sim[i].launch.meta_time_s);
    bridge_row(ranks[i], "container", cont_analytic[i].meta_time_s,
               cont_sim[i].launch.meta_time_s);
    bridge_row(ranks[i], "container+wrap", wrap_analytic[i].meta_time_s,
               wrap_sim[i].launch.meta_time_s);
  }

  heading("queueing internals (container, largest sweep point)");
  const auto& peak = cont_sim.back().sim;
  row("server requests", std::to_string(peak.server_requests));
  row("batches / mean batch",
      std::to_string(peak.batches) + " / " + fmt(peak.mean_batch, 1));
  row("peak queue depth", std::to_string(peak.max_queue_depth));
  row("request latency p50 / p99 / max",
      fmt(peak.latency_p50_s * 1e3, 2) + " / " +
          fmt(peak.latency_p99_s * 1e3, 2) + " / " +
          fmt(peak.latency_max_s * 1e3, 2) + " ms");

  // ---- what the formula cannot say -------------------------------------
  heading("formula-inexpressible scenarios");
  const int mid = ranks[ranks.size() / 2];

  // #1: cache-warm second wave. The closed form has no state, so wave 2
  // costs exactly wave 1; the simulator's warm negative caches answer the
  // (stat-miss dominated) probe storm client-side.
  launch::FleetConfig warm = fleet;
  warm.cache.enabled = true;
  warm.cache.negative_caching = true;
  warm.sim_waves = 2;
  const auto waves =
      launch::simulate_fleet_launch_sim(host, spec_normal, "", mid, warm);
  const double wave1 = waves.wave_makespans.at(0);
  const double wave2 = waves.wave_makespans.at(1);
  const bool gate_warm = wave2 < wave1 * 0.2;
  row("ranks", std::to_string(mid));
  row("wave 1 metadata (cold caches)", fmt(wave1, 3) + " s");
  row("wave 2 metadata (warm caches)", fmt(wave2, 4) + " s");
  row("formula's wave 2 prediction", fmt(wave1, 3) + " s (identical)");
  row("warm-cache hits in wave 2", std::to_string(waves.sim.cache_hits));

  // #2: straggler tail. One rank starts after the storm has drained; the
  // simulated makespan tracks the straggler, and its stream now runs
  // CONTENTION-FREE — it finishes in delay + solo time, far below the
  // delay + full-storm answer a shifted formula would give. The formula
  // only sees rank COUNT; it can express neither effect.
  const auto& tight = cont_sim[ranks.size() / 2];
  const double delay_s = std::ceil(tight.sim.makespan_s) + 1.0;
  launch::FleetConfig late = fleet;
  late.start_delays.assign(static_cast<std::size_t>(mid), 0.0);
  late.start_delays[static_cast<std::size_t>(mid / 2)] = delay_s;
  const auto straggler =
      launch::simulate_fleet_launch_sim(host, spec_normal, "", mid, late);
  const bool gate_straggler =
      straggler.sim.makespan_s > delay_s &&
      straggler.sim.makespan_s > tight.sim.makespan_s &&
      straggler.sim.makespan_s < delay_s + tight.sim.makespan_s;
  row("straggler delay on one rank", fmt(delay_s, 1) + " s");
  row("makespan without straggler", fmt(tight.sim.makespan_s, 3) + " s");
  row("makespan with straggler", fmt(straggler.sim.makespan_s, 3) + " s");
  row("straggler's contention-free solo stream",
      fmt(straggler.sim.makespan_s - delay_s, 3) + " s");

  // ---- determinism ------------------------------------------------------
  launch::FleetConfig pareto = fleet;
  pareto.service.dist = mds::Dist::Pareto;
  pareto.service.seed = 7;
  const auto run_a =
      launch::simulate_fleet_launch_sim(host, spec_wrapped, "", mid, pareto);
  const auto run_b =
      launch::simulate_fleet_launch_sim(host, spec_wrapped, "", mid, pareto);
  pareto.service.seed = 8;
  const auto run_c =
      launch::simulate_fleet_launch_sim(host, spec_wrapped, "", mid, pareto);
  const bool gate_deterministic =
      run_a.sim.makespan_s == run_b.sim.makespan_s &&
      run_a.sim.server_requests == run_b.sim.server_requests &&
      run_a.sim.latency_max_s == run_b.sim.latency_max_s &&
      run_a.sim.makespan_s != run_c.sim.makespan_s;

  heading("acceptance gates");
  row("queueing engine within 5% of formula (3 substrates)",
      gate_bridge ? "PASS" : "FAIL");
  row("cache-warm wave 2 under 20% of cold wave", gate_warm ? "PASS" : "FAIL");
  row("straggler stretches makespan by ~its delay",
      gate_straggler ? "PASS" : "FAIL");
  row("fixed seed bitwise-deterministic, seed-sensitive",
      gate_deterministic ? "PASS" : "FAIL");

  return (gate_bridge && gate_warm && gate_straggler && gate_deterministic)
             ? 0
             : 1;
}

// Event-loop throughput: replay a synthetic K-op stream through P clients.
void BM_SimulateStorm(benchmark::State& state) {
  const int nprocs = static_cast<int>(state.range(0));
  std::vector<vfs::OpRecord> stream;
  for (std::uint32_t i = 0; i < 512; ++i) {
    stream.push_back({i % 2 ? vfs::OpKind::Open : vfs::OpKind::Stat,
                      /*hit=*/i % 4 == 1, /*shared=*/true,
                      /*node_local=*/false, /*path=*/i});
  }
  mds::MdsConfig config;
  for (auto _ : state) {
    mds::MdsSimulator sim(config);
    benchmark::DoNotOptimize(sim.run_homogeneous(stream, nprocs).makespan_s);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 512);
}
BENCHMARK(BM_SimulateStorm)
    ->Arg(64)
    ->Arg(512)
    ->Arg(2048)
    ->Unit(benchmark::kMillisecond);

void BM_AnalyticExtrapolate(benchmark::State& state) {
  launch::RankMeasurement rank;
  rank.meta_ops = 512;
  rank.bytes = 4u << 20;
  const launch::ClusterConfig cluster;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        launch::extrapolate(rank, static_cast<int>(state.range(0)), cluster)
            .meta_time_s);
  }
}
BENCHMARK(BM_AnalyticExtrapolate)->Arg(2048)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  const int failures = print_report();
  const int bench_rc = depchaos::bench::run_benchmarks(argc, argv);
  return failures ? failures : bench_rc;
}
