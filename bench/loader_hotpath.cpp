// Loader hot path: resolves/sec through the interned-path resolution core.
//
// The PR-2 profile showed the loader's candidate storm dominated by string
// churn — every probe re-normalized and re-split its path, then walked the
// overlay chain component by component. The interned core replaces that
// with a PathTable id per candidate and a per-view dentry cache, so a
// repeated probe is a hash hit instead of a walk.
//
// This bench measures stat-probe throughput on the debian and pynamic
// worlds two ways:
//   interned+cached — the production path: PathId probes, dentry cache on.
//   string baseline — the pre-refactor cost model: dentry cache off, plus
//                     the exact per-probe normalize_path + split_nonempty
//                     work the old resolve() performed before walking.
// The acceptance gate requires >= 2x on the debian world and exits
// non-zero on regression, so CI runs it next to fork_scaling
// (DEPCHAOS_SMOKE=1 shrinks the worlds for the quick mode). Full load()
// closure throughput is reported for context.

#include <chrono>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "depchaos/core/world.hpp"
#include "depchaos/support/strings.hpp"

namespace {

using namespace depchaos;

bool smoke_mode() { return std::getenv("DEPCHAOS_SMOKE") != nullptr; }

core::Session make_debian_session() {
  workload::InstalledSystemConfig config;
  if (smoke_mode()) {
    config.num_binaries = 200;
    config.num_shared_objects = 120;
  }
  return core::WorldBuilder().debian(config).build();
}

core::Session make_pynamic_session() {
  workload::PynamicConfig config;
  config.num_modules = smoke_mode() ? 40 : 300;
  config.exe_extra_bytes = 0;
  return core::WorldBuilder().pynamic(config).build();
}

std::vector<std::string> debian_exes(std::size_t count) {
  std::vector<std::string> exes;
  exes.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    exes.push_back("/usr/bin/bin" + std::to_string(i));
  }
  return exes;
}

/// A realistic probe mix for one world: every path the loader actually
/// resolved for `exes`, plus one guaranteed miss per closure directory
/// (the failed-probe side of the candidate storm).
std::vector<std::string> probe_corpus(core::Session& session,
                                      const std::vector<std::string>& exes) {
  std::vector<std::string> probes;
  for (const auto& exe : exes) {
    const auto report = session.load(exe);
    for (const auto& obj : report.load_order) {
      probes.push_back(obj.path);
      probes.push_back(vfs::dirname(obj.path) + "/libdoesnotexist.so.0");
    }
  }
  return probes;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Production path: candidates interned once (the loader holds ids), then
/// probed by id against the dentry-cached resolver.
double cached_resolves_per_sec(vfs::FileSystem& fs,
                               const std::vector<std::string>& probes,
                               int rounds) {
  std::vector<support::PathId> ids;
  ids.reserve(probes.size());
  for (const auto& probe : probes) ids.push_back(fs.intern(probe));
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t hits = 0;
  for (int round = 0; round < rounds; ++round) {
    for (const support::PathId id : ids) {
      if (fs.stat(id).has_value()) ++hits;
    }
  }
  benchmark::DoNotOptimize(hits);
  return static_cast<double>(probes.size()) * rounds / seconds_since(start);
}

/// Pre-refactor cost model: cache off, and every probe re-pays the
/// normalize + split string churn the old resolve() performed.
double baseline_resolves_per_sec(vfs::FileSystem& fs,
                                 const std::vector<std::string>& probes,
                                 int rounds) {
  fs.set_dentry_cache(false);
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t hits = 0;
  for (int round = 0; round < rounds; ++round) {
    for (const auto& probe : probes) {
      const std::string norm = vfs::normalize_path(probe);
      const auto comps = support::split_nonempty(norm, '/');
      benchmark::DoNotOptimize(comps.size());
      if (fs.stat(probe).has_value()) ++hits;
    }
  }
  benchmark::DoNotOptimize(hits);
  fs.set_dentry_cache(true);
  return static_cast<double>(probes.size()) * rounds / seconds_since(start);
}

/// Full-closure throughput for context: load() per exe, cache state as in
/// production.
double loads_per_sec(core::Session& session,
                     const std::vector<std::string>& exes, int rounds) {
  const auto start = std::chrono::steady_clock::now();
  for (int round = 0; round < rounds; ++round) {
    for (const auto& exe : exes) {
      benchmark::DoNotOptimize(session.load(exe).load_order.size());
    }
  }
  return static_cast<double>(exes.size()) * rounds / seconds_since(start);
}

/// Measure one world; returns the cached/baseline speedup.
double report_world(const char* world_name, core::Session& session,
                    const std::vector<std::string>& exes) {
  using depchaos::bench::fmt;
  using depchaos::bench::row;

  const auto probes = probe_corpus(session, exes);
  const int rounds = smoke_mode() ? 10 : 40;

  vfs::FileSystem& fs = session.fs();
  fs.set_counting(false);  // throughput, not accounting
  const double baseline = baseline_resolves_per_sec(fs, probes, rounds);
  const double cached = cached_resolves_per_sec(fs, probes, rounds);
  fs.set_counting(true);
  const double speedup = baseline > 0 ? cached / baseline : 0.0;

  row(std::string(world_name) + " probe corpus", std::to_string(probes.size()));
  row(std::string(world_name) + " resolves/s (string baseline)",
      fmt(baseline / 1e6, 2) + " M/s");
  row(std::string(world_name) + " resolves/s (interned+cached)",
      fmt(cached / 1e6, 2) + " M/s");
  row(std::string(world_name) + " speedup", fmt(speedup, 2) + "x");
  row(std::string(world_name) + " load() closures/s",
      fmt(loads_per_sec(session, exes, smoke_mode() ? 2 : 4), 0));
  return speedup;
}

int print_report() {
  using depchaos::bench::heading;
  using depchaos::bench::row;

  heading("Loader hot path — interned resolution vs pre-refactor baseline");
  auto debian = make_debian_session();
  const auto debian_targets = debian_exes(smoke_mode() ? 24 : 64);
  const double debian_speedup =
      report_world("debian", debian, debian_targets);

  auto pynamic = make_pynamic_session();
  const std::vector<std::string> pynamic_targets{pynamic.default_exe()};
  report_world("pynamic", pynamic, pynamic_targets);

  heading("acceptance gate");
  const bool gate_ok = debian_speedup >= 2.0;
  row(">= 2x resolves/s over string baseline (debian)",
      gate_ok ? "PASS" : "FAIL — hot-path regression");
  return gate_ok ? 0 : 1;
}

void BM_StatInternedCached(benchmark::State& state) {
  auto session = make_debian_session();
  const auto exes = debian_exes(8);
  const auto probes = probe_corpus(session, exes);
  vfs::FileSystem& fs = session.fs();
  fs.set_counting(false);
  std::vector<support::PathId> ids;
  for (const auto& probe : probes) ids.push_back(fs.intern(probe));
  for (auto _ : state) {
    for (const support::PathId id : ids) {
      benchmark::DoNotOptimize(fs.stat(id).has_value());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ids.size()));
}
BENCHMARK(BM_StatInternedCached)->Unit(benchmark::kMillisecond);

void BM_StatStringBaseline(benchmark::State& state) {
  auto session = make_debian_session();
  const auto exes = debian_exes(8);
  const auto probes = probe_corpus(session, exes);
  vfs::FileSystem& fs = session.fs();
  fs.set_counting(false);
  fs.set_dentry_cache(false);
  for (auto _ : state) {
    for (const auto& probe : probes) {
      const auto comps =
          depchaos::support::split_nonempty(vfs::normalize_path(probe), '/');
      benchmark::DoNotOptimize(comps.size());
      benchmark::DoNotOptimize(fs.stat(probe).has_value());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(probes.size()));
}
BENCHMARK(BM_StatStringBaseline)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const int failures = print_report();
  const int bench_rc = depchaos::bench::run_benchmarks(argc, argv);
  return failures ? failures : bench_rc;
}
