// Ablation: static vs dynamic vs shrinkwrapped (§III-B "Questioning
// Dynamic Linking" + Fig 4 tie-in).
//
// Startup cost: a static image is one open; shrinkwrap gets dynamic
// loading to deps+1 opens; an as-built store binary pays the search storm.
// System cost: on a Fig 4-shaped installed system, static linking forfeits
// all cross-binary sharing — but Fig 4 says only ~4% of libraries are
// widely shared, so the blowup is bounded by the popular few (libc).

#include "bench_util.hpp"
#include "depchaos/core/world.hpp"
#include "depchaos/elf/patcher.hpp"
#include "depchaos/loader/static_link.hpp"
#include "depchaos/support/rng.hpp"

namespace {

using namespace depchaos;

void print_startup() {
  using depchaos::bench::heading;
  using depchaos::bench::row;
  heading("Ablation — startup metadata ops: dynamic vs shrinkwrap vs static");

  auto session = core::WorldBuilder().emacs({}).build();

  const auto normal = session.load();
  row("dynamic, as built", std::to_string(normal.stats.metadata_calls()) +
                               " ops (search storm)");

  std::vector<std::string> closure;
  for (std::size_t i = 1; i < normal.load_order.size(); ++i) {
    closure.push_back(normal.load_order[i].path);
  }
  const auto static_image =
      loader::static_link(session.fs(), session.default_exe(), closure);
  if (static_image.ok) {
    elf::install_object(session.fs(), "/bin/emacs-static",
                        static_image.merged);
    session.invalidate();
    const auto report = session.load("/bin/emacs-static");
    row("static image",
        std::to_string(report.stats.metadata_calls()) + " ops (one open)");
  } else {
    row("static image", "LINK FAILED (duplicate symbols)");
  }

  (void)session.shrinkwrap();
  const auto wrapped = session.load();
  row("shrinkwrapped (still dynamic)",
      std::to_string(wrapped.stats.metadata_calls()) +
          " ops (deps+1 opens; LD_PRELOAD tools still work)");
}

void print_system_cost() {
  using depchaos::bench::fmt;
  using depchaos::bench::heading;
  using depchaos::bench::row;
  heading("Ablation — whole-system bytes if everything were static (Fig 4 "
          "system)");

  const auto system = workload::generate_installed_system({});
  // Library sizes: heavy head (libc-like), light tail.
  support::Rng rng(0x512e5);
  std::vector<std::uint64_t> lib_sizes;
  lib_sizes.reserve(system.num_shared_objects);
  for (std::size_t i = 0; i < system.num_shared_objects; ++i) {
    const std::uint64_t base = i == 0 ? (2u << 20) : (64u << 10);
    lib_sizes.push_back(base + rng.below(256u << 10));
  }
  std::vector<std::uint64_t> bin_sizes(system.binary_deps.size(), 128u << 10);

  const auto cost = loader::estimate_system_cost(bin_sizes,
                                                 system.binary_deps, lib_sizes);
  row("dynamic (shared) resident",
      fmt(static_cast<double>(cost.dynamic_bytes) / (1 << 30), 2) + " GiB");
  row("static (duplicated) resident",
      fmt(static_cast<double>(cost.static_bytes) / (1 << 30), 2) + " GiB");
  row("blowup", fmt(cost.blowup(), 1) + "x");
}

void BM_StaticLink(benchmark::State& state) {
  workload::EmacsConfig config;
  config.num_deps = static_cast<std::size_t>(state.range(0));
  auto session = core::WorldBuilder().emacs(config).build();
  const auto report = session.load();
  std::vector<std::string> closure;
  for (std::size_t i = 1; i < report.load_order.size(); ++i) {
    closure.push_back(report.load_order[i].path);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        loader::static_link(session.fs(), session.default_exe(), closure).ok);
  }
}
BENCHMARK(BM_StaticLink)->Arg(50)->Arg(200)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_startup();
  print_system_cost();
  return depchaos::bench::run_benchmarks(argc, argv);
}
