// Ablation: the cost of a security update under each distribution model
// (§II trade-offs; §III-B's CVE-cost debate).
//
// The same logical stack — a popular library (libcurl-like) used by many
// applications — delivered three ways. A CVE lands in the library:
//   FHS:    overwrite ONE file; every app picks it up on next load.
//   Bundle: every bundle vendors its own copy; all must be re-shipped.
//   Store:  the pessimistic hash cascades; the dependents' closure is
//           rebuilt into new prefixes (old generation stays for rollback).

#include "bench_util.hpp"
#include "depchaos/core/world.hpp"
#include "depchaos/elf/patcher.hpp"
#include "depchaos/pkg/bundle.hpp"
#include "depchaos/pkg/fhs.hpp"
#include "depchaos/pkg/store.hpp"

namespace {

using namespace depchaos;
constexpr std::size_t kApps = 40;
constexpr std::uint64_t kLibSize = 2u << 20;   // 2 MiB library
constexpr std::uint64_t kAppSize = 1u << 20;   // 1 MiB per app

elf::Object curl_like(std::uint64_t size) {
  elf::Object lib = elf::make_library("libcurl.so.4");
  lib.extra_size = size;
  return lib;
}

void print_report() {
  using depchaos::bench::fmt;
  using depchaos::bench::heading;
  using depchaos::bench::row;
  heading("Ablation — bytes rewritten by a libcurl CVE fix, per model");

  // FHS: one file.
  {
    core::WorldBuilder world;
    vfs::FileSystem& fs = world.fs();
    pkg::fhs::Installer installer(fs);
    pkg::fhs::Package lib;
    lib.name = "libcurl";
    lib.version = "7.79";
    lib.files.push_back({"usr/lib/libcurl.so.4", "", curl_like(kLibSize)});
    installer.install(lib);
    const std::uint64_t before = fs.disk_usage("/usr/lib");
    pkg::fhs::Package fixed = lib;
    fixed.version = "7.79-cve";
    installer.install(fixed);  // overwrites in place
    row("FHS", fmt(static_cast<double>(kLibSize) / (1 << 20), 1) +
                   " MiB (one shared file; apps untouched); dir size " +
                   fmt(static_cast<double>(fs.disk_usage("/usr/lib")) /
                           (1 << 20), 1) + " MiB (was " +
                   fmt(static_cast<double>(before) / (1 << 20), 1) + ")");
  }

  // Bundles: every app re-shipped.
  {
    core::WorldBuilder world;
    vfs::FileSystem& fs = world.fs();
    std::uint64_t rewritten = 0;
    for (std::size_t i = 0; i < kApps; ++i) {
      pkg::bundle::BundleSpec spec;
      spec.name = "app" + std::to_string(i);
      elf::Object exe = elf::make_executable({"libcurl.so.4"});
      exe.extra_size = kAppSize;
      spec.exe = exe;
      spec.libs = {{"libcurl.so.4", curl_like(kLibSize)}};
      const auto bundle = pkg::bundle::create_bundle(fs, spec);
      rewritten += fs.disk_usage(bundle.root);  // whole bundle re-shipped
    }
    row("Bundled (" + std::to_string(kApps) + " apps)",
        fmt(static_cast<double>(rewritten) / (1 << 20), 1) +
            " MiB (every vendored copy + its bundle)");
  }

  // Store: the rebuild cascade.
  {
    core::WorldBuilder world;
    pkg::store::Store store(world.fs());
    pkg::store::PackageSpec curl;
    curl.name = "libcurl";
    curl.version = "7.79";
    curl.files.push_back(
        pkg::store::StoreFile{"lib/libcurl.so.4", curl_like(kLibSize), ""});
    const auto curl_prefix = store.add(curl).prefix;
    for (std::size_t i = 0; i < kApps; ++i) {
      pkg::store::PackageSpec app;
      app.name = "app" + std::to_string(i);
      app.version = "1";
      app.deps = {curl_prefix};
      elf::Object exe = elf::make_executable({"libcurl.so.4"});
      exe.extra_size = kAppSize;
      app.files.push_back(pkg::store::StoreFile{"bin/app", exe, ""});
      store.add(app);
    }
    const auto affected = store.dependents_closure(curl_prefix);
    row("Store (" + std::to_string(kApps) + " dependents)",
        fmt(static_cast<double>(store.rebuild_bytes(curl_prefix)) / (1 << 20),
            1) +
            " MiB rebuilt into new prefixes (" +
            std::to_string(affected.size()) +
            " packages re-hashed; old generation kept for rollback)");
  }
  std::printf(
      "\n  FHS pays the least per CVE and can say the least about what is\n"
      "  actually running; bundles pay the most (one copy per app); the\n"
      "  store pays the cascade but is the only model with atomic rollback\n"
      "  (§II trade-offs).\n");
}

void BM_DependentsClosure(benchmark::State& state) {
  core::WorldBuilder world;
  pkg::store::Store store(world.fs());
  pkg::store::PackageSpec base;
  base.name = "base";
  base.version = "1";
  base.files.push_back(
      pkg::store::StoreFile{"lib/libbase.so", elf::make_library("libbase.so"), ""});
  const auto base_prefix = store.add(base).prefix;
  std::string prev = base_prefix;
  for (int i = 0; i < state.range(0); ++i) {
    pkg::store::PackageSpec pkg;
    pkg.name = "pkg" + std::to_string(i);
    pkg.version = "1";
    pkg.deps = {prev};
    pkg.files.push_back(pkg::store::StoreFile{
        "lib/lib" + pkg.name + ".so", elf::make_library("lib" + pkg.name + ".so"),
        ""});
    prev = store.add(pkg).prefix;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.dependents_closure(base_prefix).size());
  }
}
BENCHMARK(BM_DependentsClosure)->Arg(50)->Arg(400)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  return depchaos::bench::run_benchmarks(argc, argv);
}
