// Fig 2: "A graph, or snarl, of the build and runtime package dependencies
// needed by Ruby in Nix" — 453 dependencies dominated by bootstrap stages,
// sources, and patches; dense enough to be illegible.

#include "bench_util.hpp"
#include "depchaos/workload/nixruby.hpp"

namespace {

using namespace depchaos;

void print_figure() {
  using depchaos::bench::fmt;
  using depchaos::bench::heading;
  using depchaos::bench::row;

  const auto closure = workload::generate_ruby_closure({});
  const auto stats = closure.drvs.stats(closure.root);

  heading("Fig 2 — Ruby-in-Nix derivation closure (paper: 453 dependencies)");
  row("closure size (derivations)", std::to_string(stats.nodes));
  row("dependency edges", std::to_string(stats.edges));
  row("source/patch derivations", std::to_string(stats.sources));
  row("bootstrap-stage derivations", std::to_string(stats.bootstrap));
  row("max dependency depth", std::to_string(stats.max_depth));
  row("edge density", bench::fmt(stats.density, 4));

  const auto graph = closure.drvs.closure_graph(closure.root);
  const auto dot = graph.to_dot("ruby_nix_closure");
  row("DOT rendering size (bytes)", std::to_string(dot.size()));
  std::printf("  (pipe the to_dot() output through graphviz to draw the "
              "snarl)\n");
}

void BM_BuildRubyClosure(benchmark::State& state) {
  for (auto _ : state) {
    const auto closure = workload::generate_ruby_closure({});
    benchmark::DoNotOptimize(closure.drvs.size());
  }
}
BENCHMARK(BM_BuildRubyClosure)->Unit(benchmark::kMillisecond);

void BM_ClosureTraversal(benchmark::State& state) {
  const auto closure = workload::generate_ruby_closure({});
  for (auto _ : state) {
    benchmark::DoNotOptimize(closure.drvs.closure(closure.root).size());
  }
}
BENCHMARK(BM_ClosureTraversal)->Unit(benchmark::kMicrosecond);

void BM_DotExport(benchmark::State& state) {
  const auto closure = workload::generate_ruby_closure({});
  const auto graph = closure.drvs.closure_graph(closure.root);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph.to_dot("g").size());
  }
}
BENCHMARK(BM_DotExport)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  return depchaos::bench::run_benchmarks(argc, argv);
}
