// Introduction claim: "Today the Axom library ... can require more than
// 200 total dependencies." We concretize axom against the HPC recipe
// corpus (core recipes + synthetic TPL layer, all parsed from package.py
// text) and count the closure; then install it into a store and measure
// the as-built vs shrinkwrapped startup cost of an Axom-scale application.

#include "bench_util.hpp"
#include "depchaos/core/world.hpp"
#include "depchaos/pkg/store.hpp"
#include "depchaos/spack/install.hpp"
#include "depchaos/workload/spackrepo.hpp"

namespace {

using namespace depchaos;

void print_report() {
  using depchaos::bench::heading;
  using depchaos::bench::row;

  const auto repo = workload::build_hpc_repo();
  spack::ConcretizerOptions options;
  options.virtual_defaults["mpi"] = "openmpi";
  const spack::Concretizer concretizer(repo, options);
  const auto dag = concretizer.concretize("axom");

  heading("Intro claim — Axom's total dependency count (paper: 200+)");
  row("recipes in repository", std::to_string(repo.size()));
  row("axom concrete closure size", std::to_string(dag.size()));
  row("axom dag_hash", dag.dag_hash("axom"));

  core::WorldBuilder builder;
  pkg::store::Store store(builder.fs(), "/spack/store");
  const auto installed = spack::install_dag(store, dag);
  auto session = builder.target(installed.exe_path).build();
  const auto normal = session.load();
  row("as-built startup metadata syscalls",
      std::to_string(normal.stats.metadata_calls()));
  const auto wrap = session.shrinkwrap();
  const auto wrapped = session.load();
  row("shrinkwrapped startup metadata syscalls",
      std::to_string(wrapped.stats.metadata_calls()));
  row("frozen needed entries", std::to_string(wrap.new_needed.size()));
}

void BM_ParseCorpus(benchmark::State& state) {
  workload::SyntheticRepoConfig config;
  config.num_packages = static_cast<std::size_t>(state.range(0));
  const auto sources = workload::synthetic_recipes(config);
  for (auto _ : state) {
    spack::Repo repo;
    for (const auto& source : sources) {
      benchmark::DoNotOptimize(repo.add_package_py(source));
    }
  }
}
BENCHMARK(BM_ParseCorpus)->Arg(100)->Arg(500)->Arg(2000)
    ->Unit(benchmark::kMillisecond);

void BM_ConcretizeAxom(benchmark::State& state) {
  const auto repo = workload::build_hpc_repo();
  spack::ConcretizerOptions options;
  options.virtual_defaults["mpi"] = "openmpi";
  const spack::Concretizer concretizer(repo, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(concretizer.concretize("axom").size());
  }
}
BENCHMARK(BM_ConcretizeAxom)->Unit(benchmark::kMillisecond);

void BM_InstallAxomDag(benchmark::State& state) {
  const auto repo = workload::build_hpc_repo();
  spack::ConcretizerOptions options;
  options.virtual_defaults["mpi"] = "openmpi";
  const spack::Concretizer concretizer(repo, options);
  const auto dag = concretizer.concretize("axom");
  for (auto _ : state) {
    core::WorldBuilder builder;
    pkg::store::Store store(builder.fs(), "/spack/store");
    benchmark::DoNotOptimize(
        spack::install_dag(store, dag).prefixes.size());
  }
}
BENCHMARK(BM_InstallAxomDag)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  return depchaos::bench::run_benchmarks(argc, argv);
}
