// Ablation: the three workarounds of §III-D and §IV, compared on the same
// store-model application:
//   Dependency Views  — one symlink-farm RPATH (fast, costs inodes,
//                       single-version restriction)
//   Needy Executables — closure on the link line (fast, breaks on dup
//                       strong symbols)
//   Shrinkwrap        — absolute DT_NEEDED (fast, env-independent)

#include "bench_util.hpp"
#include "depchaos/core/world.hpp"
#include "depchaos/elf/patcher.hpp"
#include "depchaos/shrinkwrap/ldcache.hpp"
#include "depchaos/shrinkwrap/needy.hpp"
#include "depchaos/shrinkwrap/views.hpp"

namespace {

using namespace depchaos;

core::Session make_session(std::size_t modules = 150, bool app_cache = false) {
  workload::PynamicConfig config;
  config.num_modules = modules;
  config.exe_extra_bytes = 0;
  loader::SearchConfig search;
  search.use_app_cache = app_cache;
  return core::WorldBuilder().search(search).pynamic(config).build();
}

struct Row {
  std::string name;
  std::uint64_t ops = 0;
  std::uint64_t failed = 0;
  std::size_t inode_cost = 0;
  bool env_immune = false;
};

Row measure(const std::string& name, core::Session& session) {
  Row result;
  result.name = name;
  const auto report = session.load();
  result.ops = report.stats.metadata_calls();
  result.failed = report.stats.failed_probes;
  // Environment immunity: plant an impostor first in LD_LIBRARY_PATH.
  elf::install_object(session.fs(), "/evil/libpynamic_module_0.so",
                      elf::make_library("libpynamic_module_0.so"));
  session.invalidate();
  const auto hostile = session.load(
      "", loader::Environment::with_library_path({"/evil"}));
  const auto* module0 = hostile.find_loaded("libpynamic_module_0.so");
  result.env_immune =
      module0 != nullptr && !module0->path.starts_with("/evil");
  return result;
}

void print_report() {
  using depchaos::bench::heading;
  heading("Ablation — workaround strategies on a 150-module store app");

  std::vector<Row> rows;
  {
    auto session = make_session();
    rows.push_back(measure("as-built (rpath list)", session));
  }
  {
    auto session = make_session();
    const std::size_t inodes_before = session.fs().inode_count();
    const auto view = shrinkwrap::make_dependency_view(
        session.fs(), session.loader(), session.default_exe(),
        "/views/pynamic");
    auto row = measure("dependency view", session);
    row.inode_cost = session.fs().inode_count() - inodes_before;
    row.name += view.ok ? "" : " (CONFLICTS)";
    rows.push_back(row);
  }
  {
    auto session = make_session();
    const auto needy = shrinkwrap::make_needy(session.fs(), session.loader(),
                                              session.default_exe());
    auto row = measure(needy.ok ? "needy executable" : "needy (LINK FAIL)",
                       session);
    rows.push_back(row);
  }
  {
    auto session = make_session();
    (void)session.shrinkwrap();
    rows.push_back(measure("shrinkwrapped", session));
  }
  {
    auto session = make_session(150, /*app_cache=*/true);
    (void)shrinkwrap::make_loader_cache(session.fs(), session.loader(),
                                        session.default_exe());
    rows.push_back(measure("app loader cache (Guix)", session));
  }

  std::printf("  %-26s %10s %10s %8s %10s\n", "strategy", "meta ops",
              "failed", "inodes", "env-immune");
  for (const auto& row : rows) {
    std::printf("  %-26s %10llu %10llu %8zu %10s\n", row.name.c_str(),
                static_cast<unsigned long long>(row.ops),
                static_cast<unsigned long long>(row.failed), row.inode_cost,
                row.env_immune ? "yes" : "no");
    depchaos::bench::capture(
        row.name, std::to_string(row.ops) + " ops, " +
                      std::to_string(row.failed) + " failed, " +
                      std::to_string(row.inode_cost) + " inodes, env-immune=" +
                      (row.env_immune ? "yes" : "no"));
  }
}

void BM_StrategyLoad(benchmark::State& state) {
  auto session = make_session(100);
  switch (state.range(0)) {
    case 1:
      (void)shrinkwrap::make_dependency_view(session.fs(), session.loader(),
                                             session.default_exe(), "/v");
      break;
    case 2:
      (void)shrinkwrap::make_needy(session.fs(), session.loader(),
                                   session.default_exe());
      break;
    case 3:
      (void)session.shrinkwrap();
      break;
    default:
      break;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.load().success);
  }
}
BENCHMARK(BM_StrategyLoad)
    ->Arg(0)  // as built
    ->Arg(1)  // view
    ->Arg(2)  // needy
    ->Arg(3)  // shrinkwrap
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  return depchaos::bench::run_benchmarks(argc, argv);
}
