// Ablation: the three workarounds of §III-D and §IV, compared on the same
// store-model application:
//   Dependency Views  — one symlink-farm RPATH (fast, costs inodes,
//                       single-version restriction)
//   Needy Executables — closure on the link line (fast, breaks on dup
//                       strong symbols)
//   Shrinkwrap        — absolute DT_NEEDED (fast, env-independent)

#include "bench_util.hpp"
#include "depchaos/elf/patcher.hpp"
#include "depchaos/loader/loader.hpp"
#include "depchaos/shrinkwrap/ldcache.hpp"
#include "depchaos/shrinkwrap/needy.hpp"
#include "depchaos/shrinkwrap/shrinkwrap.hpp"
#include "depchaos/shrinkwrap/views.hpp"
#include "depchaos/workload/pynamic.hpp"

namespace {

using namespace depchaos;

struct World {
  vfs::FileSystem fs;
  workload::PynamicApp app;
  loader::Loader loader;

  explicit World(std::size_t modules = 150, bool app_cache = false)
      : loader(fs, make_search_config(app_cache)) {
    workload::PynamicConfig config;
    config.num_modules = modules;
    config.exe_extra_bytes = 0;
    app = workload::generate_pynamic(fs, config);
  }

  static loader::SearchConfig make_search_config(bool app_cache) {
    loader::SearchConfig config;
    config.use_app_cache = app_cache;
    return config;
  }
};

struct Row {
  std::string name;
  std::uint64_t ops = 0;
  std::uint64_t failed = 0;
  std::size_t inode_cost = 0;
  bool env_immune = false;
};

Row measure(const std::string& name, World& world) {
  Row result;
  result.name = name;
  const auto report = world.loader.load(world.app.exe_path);
  result.ops = report.stats.metadata_calls();
  result.failed = report.stats.failed_probes;
  // Environment immunity: plant an impostor first in LD_LIBRARY_PATH.
  elf::install_object(world.fs, "/evil/libpynamic_module_0.so",
                      elf::make_library("libpynamic_module_0.so"));
  world.loader.invalidate();
  const auto hostile = world.loader.load(
      world.app.exe_path,
      loader::Environment::with_library_path({"/evil"}));
  const auto* module0 = hostile.find_loaded("libpynamic_module_0.so");
  result.env_immune =
      module0 != nullptr && !module0->path.starts_with("/evil");
  return result;
}

void print_report() {
  using depchaos::bench::heading;
  heading("Ablation — workaround strategies on a 150-module store app");

  std::vector<Row> rows;
  {
    World world;
    rows.push_back(measure("as-built (rpath list)", world));
  }
  {
    World world;
    const std::size_t inodes_before = world.fs.inode_count();
    const auto view = shrinkwrap::make_dependency_view(
        world.fs, world.loader, world.app.exe_path, "/views/pynamic");
    auto row = measure("dependency view", world);
    row.inode_cost = world.fs.inode_count() - inodes_before;
    row.name += view.ok ? "" : " (CONFLICTS)";
    rows.push_back(row);
  }
  {
    World world;
    const auto needy =
        shrinkwrap::make_needy(world.fs, world.loader, world.app.exe_path);
    auto row = measure(needy.ok ? "needy executable" : "needy (LINK FAIL)",
                       world);
    rows.push_back(row);
  }
  {
    World world;
    (void)shrinkwrap::shrinkwrap(world.fs, world.loader, world.app.exe_path);
    rows.push_back(measure("shrinkwrapped", world));
  }
  {
    World world(150, /*app_cache=*/true);
    (void)shrinkwrap::make_loader_cache(world.fs, world.loader,
                                        world.app.exe_path);
    rows.push_back(measure("app loader cache (Guix)", world));
  }

  std::printf("  %-26s %10s %10s %8s %10s\n", "strategy", "meta ops",
              "failed", "inodes", "env-immune");
  for (const auto& row : rows) {
    std::printf("  %-26s %10llu %10llu %8zu %10s\n", row.name.c_str(),
                static_cast<unsigned long long>(row.ops),
                static_cast<unsigned long long>(row.failed), row.inode_cost,
                row.env_immune ? "yes" : "no");
  }
}

void BM_StrategyLoad(benchmark::State& state) {
  World world(100);
  switch (state.range(0)) {
    case 1:
      (void)shrinkwrap::make_dependency_view(world.fs, world.loader,
                                             world.app.exe_path, "/v");
      break;
    case 2:
      (void)shrinkwrap::make_needy(world.fs, world.loader,
                                   world.app.exe_path);
      break;
    case 3:
      (void)shrinkwrap::shrinkwrap(world.fs, world.loader,
                                   world.app.exe_path);
      break;
    default:
      break;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.loader.load(world.app.exe_path).success);
  }
}
BENCHMARK(BM_StrategyLoad)
    ->Arg(0)  // as built
    ->Arg(1)  // view
    ->Arg(2)  // needy
    ->Arg(3)  // shrinkwrap
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  return depchaos::bench::run_benchmarks(argc, argv);
}
