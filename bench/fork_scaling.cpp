// Fork scaling: the copy-on-write world fork behind core::Session.
//
// load_many used to deep-copy the whole simulated world per worker —
// O(world × workers) bytes before the first probe. With layered CoW
// storage a fork is O(1): workers share the frozen base and own only what
// they write (loads write nothing). This bench measures both per-worker
// setup paths on the pynamic and debian worlds, checks the acceptance
// gate (fork allocates <5% of the bytes a deep copy does on the debian
// world), verifies that load_many reports stay byte-identical to
// sequential loads, and times load_many throughput across worker counts.
//
// Exits non-zero when the CoW gate or the byte-identity check fails, so
// CI can run it as a regression tripwire (DEPCHAOS_SMOKE=1 shrinks the
// worlds for the quick mode).

#include <chrono>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "depchaos/core/world.hpp"

namespace {

using namespace depchaos;

bool smoke_mode() { return std::getenv("DEPCHAOS_SMOKE") != nullptr; }

core::Session make_pynamic_session() {
  workload::PynamicConfig config;
  config.num_modules = smoke_mode() ? 40 : 300;
  config.exe_extra_bytes = 0;
  return core::WorldBuilder().pynamic(config).build();
}

core::Session make_debian_session() {
  workload::InstalledSystemConfig config;
  if (smoke_mode()) {
    config.num_binaries = 200;
    config.num_shared_objects = 120;
  }
  return core::WorldBuilder().debian(config).build();
}

/// Exe corpus to resolve: one entry per debian binary (the pynamic world
/// instead repeats its one executable — independent closures either way).
std::vector<std::string> debian_exes(std::size_t count) {
  std::vector<std::string> exes;
  exes.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    exes.push_back("/usr/bin/bin" + std::to_string(i));
  }
  return exes;
}

bool reports_identical(const loader::LoadReport& a,
                       const loader::LoadReport& b) {
  if (a.success != b.success || a.load_order.size() != b.load_order.size() ||
      a.requests.size() != b.requests.size() ||
      a.missing.size() != b.missing.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.load_order.size(); ++i) {
    const auto& x = a.load_order[i];
    const auto& y = b.load_order[i];
    if (x.name != y.name || x.path != y.path || x.real_path != y.real_path ||
        x.requested_by != y.requested_by || x.how != y.how ||
        x.depth != y.depth || x.parent_index != y.parent_index) {
      return false;
    }
  }
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    if (a.requests[i].name != b.requests[i].name ||
        a.requests[i].how != b.requests[i].how) {
      return false;
    }
  }
  return a.stats.stat_calls == b.stats.stat_calls &&
         a.stats.open_calls == b.stats.open_calls &&
         a.stats.read_calls == b.stats.read_calls &&
         a.stats.readlink_calls == b.stats.readlink_calls &&
         a.stats.failed_probes == b.stats.failed_probes &&
         a.stats.sim_time_s == b.stats.sim_time_s &&
         a.probe_log == b.probe_log;
}

/// Per-worker setup bytes, deep-copy vs fork, on one world. Returns the
/// fork/deep ratio.
double report_setup_cost(const char* world_name, core::Session& session) {
  using depchaos::bench::fmt;
  using depchaos::bench::row;

  vfs::FileSystem& fs = session.fs();
  const vfs::FileSystem deep(fs);           // the old load_many path
  vfs::FileSystem forked = fs.fork();       // the new one
  const double deep_bytes = static_cast<double>(deep.owned_bytes());
  const double fork_bytes = static_cast<double>(forked.owned_bytes());
  const double ratio = deep_bytes > 0 ? fork_bytes / deep_bytes : 0.0;

  row(std::string(world_name) + " inodes", std::to_string(fs.inode_count()));
  row(std::string(world_name) + " deep-copy bytes/worker",
      fmt(deep_bytes / 1024.0, 1) + " KiB");
  row(std::string(world_name) + " fork bytes/worker",
      fmt(fork_bytes / 1024.0, 1) + " KiB");
  row(std::string(world_name) + " fork/deep ratio",
      fmt(ratio * 100.0, 3) + " %");
  return ratio;
}

/// load_many across worker counts; verifies byte-identity against
/// sequential loads once per world.
bool report_throughput(const char* world_name, const std::string& image,
                       const std::vector<std::string>& exes) {
  using depchaos::bench::fmt;
  using depchaos::bench::row;

  // Sequential ground truth from a pristine session over the same image.
  auto serial_session = core::Session::from_snapshot(image);
  std::vector<loader::LoadReport> serial;
  serial.reserve(exes.size());
  for (const auto& exe : exes) serial.push_back(serial_session.load(exe));

  bool identical = true;
  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    core::SessionConfig config;
    config.threads = workers;
    auto session = core::Session::from_snapshot(image, std::move(config));
    const auto start = std::chrono::steady_clock::now();
    const auto reports = session.load_many(exes);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    for (std::size_t i = 0; i < exes.size(); ++i) {
      identical = identical && reports_identical(serial[i], reports[i]);
    }
    row(std::string(world_name) + " load_many x" + std::to_string(workers),
        fmt(exes.size() / seconds, 0) + " loads/s");
  }
  row(std::string(world_name) + " reports byte-identical to sequential",
      identical ? "yes" : "NO — REGRESSION");
  return identical;
}

int print_report() {
  using depchaos::bench::heading;
  using depchaos::bench::row;

  heading("Fork scaling — per-worker setup cost, deep copy vs CoW fork");
  auto pynamic = make_pynamic_session();
  report_setup_cost("pynamic", pynamic);
  auto debian = make_debian_session();
  const double debian_ratio = report_setup_cost("debian", debian);

  heading("load_many throughput (forked workers)");
  {
    const std::string image = pynamic.save();
    const std::vector<std::string> exes(smoke_mode() ? 8 : 16,
                                        pynamic.default_exe());
    if (!report_throughput("pynamic", image, exes)) return 1;
  }
  {
    const std::string image = debian.save();
    if (!report_throughput("debian", image,
                           debian_exes(smoke_mode() ? 16 : 64))) {
      return 1;
    }
  }

  heading("acceptance gate");
  const bool gate_ok = debian_ratio < 0.05;
  row("fork allocates <5% of deep-copy bytes (debian)",
      gate_ok ? "PASS" : "FAIL — CoW regression");
  return gate_ok ? 0 : 1;
}

void BM_DeepCopySetup(benchmark::State& state) {
  auto session = make_debian_session();
  for (auto _ : state) {
    const vfs::FileSystem copy(session.fs());
    benchmark::DoNotOptimize(copy.inode_count());
  }
}
BENCHMARK(BM_DeepCopySetup)->Unit(benchmark::kMillisecond);

void BM_ForkSetup(benchmark::State& state) {
  auto session = make_debian_session();
  for (auto _ : state) {
    vfs::FileSystem forked = session.fs().fork();
    benchmark::DoNotOptimize(forked.inode_count());
  }
}
BENCHMARK(BM_ForkSetup)->Unit(benchmark::kMicrosecond);

void BM_LoadManyForked(benchmark::State& state) {
  workload::InstalledSystemConfig world_config;
  world_config.num_binaries = 400;
  world_config.num_shared_objects = 200;
  core::WorldBuilder builder;
  builder.debian(world_config).threads(
      static_cast<std::size_t>(state.range(0)));
  auto session = builder.build();
  const auto exes = debian_exes(32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.load_many(exes).size());
  }
}
BENCHMARK(BM_LoadManyForked)->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const int failures = print_report();
  const int bench_rc = depchaos::bench::run_benchmarks(argc, argv);
  return failures ? failures : bench_rc;
}
