// Shared console helpers for the paper-table reproductions. Each bench
// binary prints the paper-style rows first (the reproduction artifact),
// then runs its google-benchmark timings.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

namespace depchaos::bench {

inline void heading(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void row(const std::string& label, const std::string& value) {
  std::printf("  %-44s %s\n", label.c_str(), value.c_str());
}

inline std::string fmt(double value, int precision = 2) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

inline int run_benchmarks(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace depchaos::bench
