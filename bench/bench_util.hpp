// Shared console helpers for the paper-table reproductions. Each bench
// binary prints the paper-style rows first (the reproduction artifact),
// then runs its google-benchmark timings.
//
// Every heading()/row() pair is also captured and written to
// BENCH_<binary>.json when run_benchmarks() is reached, so harnesses can
// diff the reproduction numbers without scraping the console text. (The
// google-benchmark timings themselves already speak JSON natively via
// --benchmark_format=json.)
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

namespace depchaos::bench {

struct ReportRow {
  std::string section;
  std::string label;
  std::string value;
};

inline std::vector<ReportRow>& report_rows() {
  static std::vector<ReportRow> rows;
  return rows;
}

inline std::string& current_section() {
  static std::string section;
  return section;
}

inline void heading(const std::string& title) {
  current_section() = title;
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void row(const std::string& label, const std::string& value) {
  std::printf("  %-44s %s\n", label.c_str(), value.c_str());
  report_rows().push_back({current_section(), label, value});
}

/// Record a row in the JSON mirror without printing — for benches that
/// format their own console tables.
inline void capture(const std::string& label, const std::string& value) {
  report_rows().push_back({current_section(), label, value});
}

inline std::string fmt(double value, int precision = 2) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

inline std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Write the captured report rows to BENCH_<basename(argv0)>.json in the
/// current directory. Best-effort: an unwritable directory only loses the
/// mirror, never the bench run.
inline void write_json_report(const std::string& argv0) {
  std::string name = argv0;
  if (const auto slash = name.find_last_of('/'); slash != std::string::npos) {
    name = name.substr(slash + 1);
  }
  std::FILE* out = std::fopen(("BENCH_" + name + ".json").c_str(), "w");
  if (out == nullptr) return;
  std::fprintf(out, "{\n  \"bench\": \"%s\",\n  \"rows\": [",
               json_escape(name).c_str());
  const auto& rows = report_rows();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(out,
                 "%s\n    {\"section\": \"%s\", \"label\": \"%s\", "
                 "\"value\": \"%s\"}",
                 i ? "," : "", json_escape(rows[i].section).c_str(),
                 json_escape(rows[i].label).c_str(),
                 json_escape(rows[i].value).c_str());
  }
  std::fprintf(out, "\n  ]\n}\n");
  std::fclose(out);
}

inline int run_benchmarks(int argc, char** argv) {
  if (argc > 0) write_json_report(argv[0]);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace depchaos::bench
