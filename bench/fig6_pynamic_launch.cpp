// Fig 6: "Time-to-launch instances of Pynamic as built (Normal) and
// shrinkwrapped" — the headline result. Paper measurements on two-socket
// Xeon E5-2695 nodes loading from NFS, cold cache, negative caching off:
//     512 ranks: 169.0 s normal vs  30.5 s wrapped  (5.5x)
//    2048 ranks: 344.6 s normal vs ~47.9 s wrapped  (7.2x)
// We reproduce the pipeline end to end: generate the ~900-library bigexe,
// replay the loader's actual syscall stream against the simulated NFS, and
// extrapolate rank contention with the calibrated launch model.

#include "bench_util.hpp"
#include "depchaos/core/world.hpp"

namespace {

using namespace depchaos;

core::Session make_session() {
  // 900 modules, 213 MiB exe, cold NFS.
  return core::WorldBuilder().pynamic({}).nfs().build();
}

void print_figure() {
  using depchaos::bench::fmt;
  using depchaos::bench::heading;
  using depchaos::bench::row;

  core::WorldBuilder builder;
  auto session = builder.pynamic({}).nfs().build();
  const auto& app = *builder.pynamic_info();
  const std::vector<int> ranks = {512, 1024, 2048};

  const auto normal = session.launch_sweep("", ranks);
  const auto wrap = session.shrinkwrap();
  const auto wrapped = session.launch_sweep("", ranks);

  heading("Fig 6 — Pynamic time-to-launch, Normal vs Shrinkwrapped");
  row("modules / needed entries", std::to_string(app.module_paths.size()));
  row("metadata ops per rank (normal)",
      std::to_string(normal[0].meta_ops_per_rank));
  row("metadata ops per rank (wrapped)",
      std::to_string(wrapped[0].meta_ops_per_rank));
  row("bytes staged per rank (MiB)",
      fmt(static_cast<double>(normal[0].bytes_per_rank) / (1 << 20), 1));
  std::printf(
      "\n  %6s %14s %14s %9s   (paper: 169/30.5s @512 -> 5.5x;"
      " 344.6s @2048 -> 7.2x)\n",
      "ranks", "normal (s)", "wrapped (s)", "speedup");
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    std::printf("  %6d %14.1f %14.1f %8.1fx\n", ranks[i],
                normal[i].total_time_s, wrapped[i].total_time_s,
                normal[i].total_time_s / wrapped[i].total_time_s);
    depchaos::bench::capture(
        "ranks=" + std::to_string(ranks[i]),
        fmt(normal[i].total_time_s, 1) + "s normal / " +
            fmt(wrapped[i].total_time_s, 1) + "s wrapped (" +
            fmt(normal[i].total_time_s / wrapped[i].total_time_s, 1) + "x)");
  }
  (void)wrap;

  // Engine column: the same sweep through the discrete-event MDS
  // simulator (src/mds). The wrapped stream is small enough to simulate
  // at every rank count; the normal 900-module stream is ~405k ops/rank,
  // so its queueing series is bounded to the smallest counts (event count
  // = ops/rank * ranks). Both series land in BENCH_*.json so the
  // trajectory records analytic/queueing agreement over time.
  {
    auto sim_session = make_session();
    const std::vector<int> normal_sim_ranks = {64, 128};
    const auto normal_sim = launch::scaling_sweep_queueing(
        sim_session.fs(), sim_session.loader(), sim_session.default_exe(),
        sim_session.env(), normal_sim_ranks, sim_session.config().cluster);
    if (!sim_session.shrinkwrap().ok()) {
      std::fprintf(stderr, "shrinkwrap failed in sim sweep\n");
    }
    const auto wrapped_sim = launch::scaling_sweep_queueing(
        sim_session.fs(), sim_session.loader(), sim_session.default_exe(),
        sim_session.env(), ranks, sim_session.config().cluster);
    std::printf("\n  queueing engine (discrete-event MDS) vs formula:\n");
    for (std::size_t i = 0; i < normal_sim.size(); ++i) {
      std::printf("  %6d %14.1f (normal, simulated)\n",
                  normal_sim[i].launch.nprocs,
                  normal_sim[i].launch.total_time_s);
      depchaos::bench::capture(
          "ranks=" + std::to_string(normal_sim[i].launch.nprocs) +
              " engine=queueing",
          fmt(normal_sim[i].launch.total_time_s, 1) + "s normal");
    }
    for (std::size_t i = 0; i < wrapped_sim.size(); ++i) {
      std::printf("  %6d %14.1f (wrapped, simulated; formula %.1f)\n",
                  wrapped_sim[i].launch.nprocs,
                  wrapped_sim[i].launch.total_time_s,
                  wrapped[i].total_time_s);
      depchaos::bench::capture(
          "ranks=" + std::to_string(wrapped_sim[i].launch.nprocs) +
              " engine=queueing",
          fmt(wrapped_sim[i].launch.total_time_s, 1) + "s wrapped vs " +
              fmt(wrapped[i].total_time_s, 1) + "s formula");
    }
  }

  // §V-A closing remark: "it could be worthwhile to explore combining
  // Shrinkwrap with an approach like Spindle" — the broadcast mitigation
  // applied to the UNWRAPPED binary, for comparison.
  {
    auto spindle_session = make_session();
    launch::ClusterConfig spindle_config;
    spindle_config.spindle_broadcast = true;
    std::printf("\n  Spindle-style broadcast on the unwrapped binary:\n");
    for (const int r : ranks) {
      const auto result = spindle_session.launch("", r, spindle_config);
      std::printf("  %6d %14.1f (one resolver rank + log-tree relay)\n", r,
                  result.total_time_s);
    }
  }
}

void BM_PynamicColdLoadNormal(benchmark::State& state) {
  auto session = make_session();
  for (auto _ : state) {
    session.fs().clear_caches();
    benchmark::DoNotOptimize(session.load().success);
  }
}
BENCHMARK(BM_PynamicColdLoadNormal)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

void BM_PynamicColdLoadWrapped(benchmark::State& state) {
  auto session = make_session();
  if (!session.shrinkwrap().ok()) state.SkipWithError("wrap failed");
  for (auto _ : state) {
    session.fs().clear_caches();
    benchmark::DoNotOptimize(session.load().success);
  }
}
BENCHMARK(BM_PynamicColdLoadWrapped)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

void BM_LaunchSweep(benchmark::State& state) {
  auto session = make_session();
  for (auto _ : state) {
    const auto result =
        session.launch("", static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(result.total_time_s);
  }
}
BENCHMARK(BM_LaunchSweep)
    ->Arg(512)
    ->Arg(2048)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  return depchaos::bench::run_benchmarks(argc, argv);
}
