// Ablation: loader search cost vs (directories × dependencies).
//
// §IV: "As the number of dependencies for a shared object grows, so does
// the length of the list that must be searched" — worst case dirs×deps
// filesystem operations. This sweep shows metadata ops growing with both
// axes, and collapsing to deps+1 after shrinkwrapping.

#include "bench_util.hpp"
#include "depchaos/core/world.hpp"

namespace {

using namespace depchaos;

core::Session make_session(std::size_t deps, std::size_t dirs) {
  workload::EmacsConfig config;
  config.num_deps = deps;
  config.num_dirs = dirs;
  return core::WorldBuilder().emacs(config).build();
}

std::uint64_t measure_ops(std::size_t deps, std::size_t dirs, bool wrapped) {
  auto session = make_session(deps, dirs);
  if (wrapped && !session.shrinkwrap().ok()) return 0;
  return session.load().stats.metadata_calls();
}

void print_report() {
  using depchaos::bench::capture;
  using depchaos::bench::fmt;
  using depchaos::bench::heading;
  heading("Ablation — metadata ops vs (search dirs x dependencies)");
  std::printf("  %6s %6s %12s %12s %9s\n", "deps", "dirs", "normal ops",
              "wrapped ops", "ratio");
  for (const std::size_t deps : {25ul, 50ul, 100ul, 200ul}) {
    for (const std::size_t dirs : {8ul, 36ul, 128ul}) {
      const auto normal = measure_ops(deps, dirs, false);
      const auto wrapped = measure_ops(deps, dirs, true);
      std::printf("  %6zu %6zu %12llu %12llu %8.1fx\n", deps, dirs,
                  static_cast<unsigned long long>(normal),
                  static_cast<unsigned long long>(wrapped),
                  static_cast<double>(normal) / static_cast<double>(wrapped));
      capture("deps=" + std::to_string(deps) + " dirs=" + std::to_string(dirs),
              std::to_string(normal) + " normal / " + std::to_string(wrapped) +
                  " wrapped (" +
                  fmt(static_cast<double>(normal) /
                          static_cast<double>(wrapped), 1) +
                  "x)");
    }
  }
}

void BM_SearchCost(benchmark::State& state) {
  auto session = make_session(static_cast<std::size_t>(state.range(0)),
                              static_cast<std::size_t>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.load().success);
  }
}
BENCHMARK(BM_SearchCost)
    ->Args({50, 8})
    ->Args({50, 128})
    ->Args({200, 36})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  return depchaos::bench::run_benchmarks(argc, argv);
}
