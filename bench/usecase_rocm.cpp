// §V-B.1: the ROCm three-factor failure. RPATH on the executable +
// LD_LIBRARY_PATH from a different ROCm module + RUNPATH inside the ROCm
// libraries => wrong-version internals loaded ("segfault"); Shrinkwrap
// freezes the 4.5 resolution and the wrong module becomes harmless.

#include "bench_util.hpp"
#include "depchaos/core/world.hpp"
#include "depchaos/workload/scenarios.hpp"

namespace {

using namespace depchaos;

/// Compose the ROCm world and open a Session targeting its executable.
core::Session make_session(workload::RocmScenario& scenario) {
  core::WorldBuilder builder;
  scenario = workload::make_rocm_scenario(builder.fs());
  return builder.target(scenario.exe_path).build();
}

void print_report() {
  using depchaos::bench::heading;
  using depchaos::bench::row;

  workload::RocmScenario scenario;
  auto session = make_session(scenario);

  heading("Use case §V-B.1 — ROCm version mixing");
  {
    const auto clean = session.load("", scenario.clean_env);
    row("clean env, unwrapped",
        workload::rocm_versions_mixed(clean, scenario) ? "MIXED (bug)"
                                                       : "consistent 4.5");
  }
  {
    const auto broken = session.load("", scenario.wrong_module_env);
    row("rocm/4.3 module loaded, unwrapped",
        workload::rocm_versions_mixed(broken, scenario)
            ? "MIXED 4.5+4.3 -> segfault (paper's failure)"
            : "consistent (unexpected)");
    for (const auto& obj : broken.load_order) {
      if (!obj.path.empty() && obj.depth > 0) {
        row("  loaded", obj.path + "  [" +
                            std::string(loader::how_found_name(obj.how)) + "]");
      }
    }
  }
  const auto wrap = session.shrinkwrap();
  row("shrinkwrap", wrap.ok() ? "applied" : "FAILED");
  {
    const auto fixed = session.load("", scenario.wrong_module_env);
    row("rocm/4.3 module loaded, wrapped",
        workload::rocm_versions_mixed(fixed, scenario)
            ? "still mixed (unexpected)"
            : "consistent 4.5 — fixed");
  }
}

void BM_RocmLoadUnwrapped(benchmark::State& state) {
  workload::RocmScenario scenario;
  auto session = make_session(scenario);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        session.load("", scenario.wrong_module_env).success);
  }
}
BENCHMARK(BM_RocmLoadUnwrapped)->Unit(benchmark::kMicrosecond);

void BM_RocmLoadWrapped(benchmark::State& state) {
  workload::RocmScenario scenario;
  auto session = make_session(scenario);
  if (!session.shrinkwrap().ok()) {
    state.SkipWithError("wrap failed");
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        session.load("", scenario.wrong_module_env).success);
  }
}
BENCHMARK(BM_RocmLoadWrapped)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  return depchaos::bench::run_benchmarks(argc, argv);
}
