// Ablation: glibc vs musl loader dialects (§IV).
//
// The same shrinkwrapped binary loads under glibc (soname dedup satisfies
// the transitive bare-soname requests) and FAILS under musl (inode-keyed
// dedup, no soname cache) — the incompatibility raised on the musl mailing
// list. Also contrasts the melded musl search order.

#include "bench_util.hpp"
#include "depchaos/elf/patcher.hpp"
#include "depchaos/loader/loader.hpp"
#include "depchaos/shrinkwrap/shrinkwrap.hpp"
#include "depchaos/workload/emacs.hpp"
#include "depchaos/workload/pynamic.hpp"

namespace {

using namespace depchaos;

void print_report() {
  using depchaos::bench::heading;
  using depchaos::bench::row;

  heading("Ablation — dialects: glibc vs musl on a shrinkwrapped binary");

  vfs::FileSystem fs;
  workload::PynamicConfig config;
  config.num_modules = 60;
  config.avg_cross_deps = 2;  // cross-deps request bare sonames
  config.exe_extra_bytes = 0;
  const auto app = workload::generate_pynamic(fs, config);

  loader::Loader glibc_loader(fs, {}, loader::Dialect::Glibc);
  const auto wrap = shrinkwrap::shrinkwrap(fs, glibc_loader, app.exe_path);
  row("shrinkwrap (under glibc)", wrap.ok() ? "ok" : "failed");

  const auto glibc_report = glibc_loader.load(app.exe_path);
  row("glibc load of wrapped binary",
      glibc_report.success ? "SUCCESS (soname dedup, Fig 5)" : "failed");

  loader::Loader musl_loader(fs, {}, loader::Dialect::Musl);
  const auto musl_report = musl_loader.load(app.exe_path);
  row("musl load of wrapped binary",
      musl_report.success
          ? "success (unexpected)"
          : "FAILS — " + std::to_string(musl_report.missing.size()) +
                " unresolved bare sonames (no soname dedup, §IV)");

  // Search-order contrast on an unwrapped app.
  vfs::FileSystem fs2;
  elf::install_object(fs2, "/rp/libx.so", elf::make_library("libx.so"));
  elf::install_object(fs2, "/env/libx.so", elf::make_library("libx.so"));
  elf::install_object(
      fs2, "/bin/app",
      elf::make_executable({"libx.so"}, {}, {"/rp"}));  // RPATH
  const auto env = loader::Environment::with_library_path({"/env"});
  loader::Loader g2(fs2, {}, loader::Dialect::Glibc);
  loader::Loader m2(fs2, {}, loader::Dialect::Musl);
  row("RPATH vs LD_LIBRARY_PATH, glibc picks",
      g2.load("/bin/app", env).load_order[1].path);
  row("RPATH vs LD_LIBRARY_PATH, musl picks",
      m2.load("/bin/app", env).load_order[1].path);
}

void BM_DialectLoad(benchmark::State& state) {
  vfs::FileSystem fs;
  const auto app = workload::generate_emacs_like(fs, {});
  const auto dialect = state.range(0) == 0 ? loader::Dialect::Glibc
                                           : loader::Dialect::Musl;
  loader::Loader loader(fs, {}, dialect);
  for (auto _ : state) {
    benchmark::DoNotOptimize(loader.load(app.exe_path).success);
  }
}
BENCHMARK(BM_DialectLoad)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  return depchaos::bench::run_benchmarks(argc, argv);
}
