// Ablation: glibc vs musl loader dialects (§IV).
//
// The same shrinkwrapped binary loads under glibc (soname dedup satisfies
// the transitive bare-soname requests) and FAILS under musl (inode-keyed
// dedup, no soname cache) — the incompatibility raised on the musl mailing
// list. Also contrasts the melded musl search order. The same world is
// shared between the two dialect sessions via a snapshot round-trip.

#include "bench_util.hpp"
#include "depchaos/core/world.hpp"

namespace {

using namespace depchaos;

void print_report() {
  using depchaos::bench::heading;
  using depchaos::bench::row;

  heading("Ablation — dialects: glibc vs musl on a shrinkwrapped binary");

  workload::PynamicConfig config;
  config.num_modules = 60;
  config.avg_cross_deps = 2;  // cross-deps request bare sonames
  config.exe_extra_bytes = 0;

  core::WorldBuilder builder;
  auto glibc_session = builder.pynamic(config).build();
  const auto wrap = glibc_session.shrinkwrap();
  row("shrinkwrap (under glibc)", wrap.ok() ? "ok" : "failed");

  const auto glibc_report = glibc_session.load();
  row("glibc load of wrapped binary",
      glibc_report.success ? "SUCCESS (soname dedup, Fig 5)" : "failed");

  // Same (wrapped) world, musl policy: snapshot round-trip into a second
  // session.
  core::SessionConfig musl_config;
  musl_config.dialect = loader::Dialect::Musl;
  auto musl_session =
      core::Session::from_snapshot(glibc_session.save(), musl_config);
  const auto musl_report = musl_session.load(glibc_session.default_exe());
  row("musl load of wrapped binary",
      musl_report.success
          ? "success (unexpected)"
          : "FAILS — " + std::to_string(musl_report.missing.size()) +
                " unresolved bare sonames (no soname dedup, §IV)");

  // Search-order contrast on an unwrapped app.
  const auto env = loader::Environment::with_library_path({"/env"});
  core::WorldBuilder contrast;
  contrast.install("/rp/libx.so", elf::make_library("libx.so"))
      .install("/env/libx.so", elf::make_library("libx.so"))
      .install("/bin/app",
               elf::make_executable({"libx.so"}, {}, {"/rp"}));  // RPATH
  const std::string image = contrast.save();
  auto g2 = contrast.build();
  core::SessionConfig m2_config;
  m2_config.dialect = loader::Dialect::Musl;
  auto m2 = core::Session::from_snapshot(image, m2_config);
  row("RPATH vs LD_LIBRARY_PATH, glibc picks",
      g2.load("/bin/app", env).load_order[1].path);
  row("RPATH vs LD_LIBRARY_PATH, musl picks",
      m2.load("/bin/app", env).load_order[1].path);
}

void BM_DialectLoad(benchmark::State& state) {
  core::WorldBuilder builder;
  builder.emacs({}).dialect(state.range(0) == 0 ? loader::Dialect::Glibc
                                                : loader::Dialect::Musl);
  auto session = builder.build();
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.load().success);
  }
}
BENCHMARK(BM_DialectLoad)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  return depchaos::bench::run_benchmarks(argc, argv);
}
