// Table II: "Evaluation of emacs stat/openat syscalls".
//
//   paper:   emacs          1823 calls   0.034121 s
//            emacs-wrapped   104 calls   0.000950 s    (36x)
//
// The emacs-as-built-by-Nix shape: 103 dependencies, 36 RUNPATH dirs. The
// syscall counts fall out of the loader mechanics; the times come from the
// local-disk latency model. (Fig 5's soname dedup is also exercised here —
// the wrapped binary's transitive bare-soname requests are all cache hits.)

#include "bench_util.hpp"
#include "depchaos/core/world.hpp"

namespace {

using namespace depchaos;

void print_table() {
  using depchaos::bench::capture;
  using depchaos::bench::fmt;
  using depchaos::bench::heading;

  auto session = core::WorldBuilder().local_disk().emacs({}).build();

  const auto normal = session.load();
  const auto wrap = session.shrinkwrap();
  const auto wrapped = session.load();

  heading("Table II — emacs stat/openat syscalls during startup");
  std::printf("  %-16s %16s %14s   (paper: 1823 / 104 calls, 36x)\n", "",
              "calls (stat/openat)", "time (s)");
  std::printf("  %-16s %16llu %14.6f\n", "emacs",
              static_cast<unsigned long long>(normal.stats.metadata_calls()),
              normal.stats.sim_time_s);
  std::printf("  %-16s %16llu %14.6f\n", "emacs-wrapped",
              static_cast<unsigned long long>(wrapped.stats.metadata_calls()),
              wrapped.stats.sim_time_s);
  std::printf("  syscall reduction: %.1fx; time reduction: %.1fx\n",
              static_cast<double>(normal.stats.metadata_calls()) /
                  static_cast<double>(wrapped.stats.metadata_calls()),
              normal.stats.sim_time_s / wrapped.stats.sim_time_s);
  capture("emacs", std::to_string(normal.stats.metadata_calls()) +
                       " calls, " + fmt(normal.stats.sim_time_s, 6) + " s");
  capture("emacs-wrapped",
          std::to_string(wrapped.stats.metadata_calls()) + " calls, " +
              fmt(wrapped.stats.sim_time_s, 6) + " s");
  capture("syscall reduction",
          fmt(static_cast<double>(normal.stats.metadata_calls()) /
                  static_cast<double>(wrapped.stats.metadata_calls()),
              1) +
              "x");

  // Fig 5 companion numbers: dedup cache hits in the wrapped load.
  int cache_hits = 0;
  for (const auto& request : wrapped.requests) {
    if (request.how == loader::HowFound::Cache) ++cache_hits;
  }
  std::printf("  (Fig 5) soname dedup cache hits in wrapped load: %d\n",
              cache_hits);
  capture("soname dedup cache hits (Fig 5)", std::to_string(cache_hits));
  (void)wrap;
}

void BM_EmacsLoadNormal(benchmark::State& state) {
  auto session = core::WorldBuilder().emacs({}).build();
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.load().success);
  }
}
BENCHMARK(BM_EmacsLoadNormal)->Unit(benchmark::kMillisecond);

void BM_EmacsLoadWrapped(benchmark::State& state) {
  auto session = core::WorldBuilder().emacs({}).build();
  if (!session.shrinkwrap().ok()) {
    state.SkipWithError("wrap failed");
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.load().success);
  }
}
BENCHMARK(BM_EmacsLoadWrapped)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  return depchaos::bench::run_benchmarks(argc, argv);
}
