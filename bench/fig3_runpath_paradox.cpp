// Fig 3: "A paradoxical setup for RUNPATH where the desired libraries are
// dirA/liba.so and dirB/libb.so" — no ordering of a single directory-level
// search path can load both intended files; absolute needed entries
// (Shrinkwrap) resolve it trivially.

#include "bench_util.hpp"
#include "depchaos/core/world.hpp"
#include "depchaos/elf/patcher.hpp"

namespace {

using namespace depchaos;

void print_figure() {
  using depchaos::bench::heading;
  using depchaos::bench::row;

  core::WorldBuilder builder;
  auto session = builder.paradox().build();
  const auto& scenario = *builder.paradox_info();

  heading("Fig 3 — RUNPATH paradox (want dirA/liba.so AND dirB/libb.so)");
  const std::vector<std::pair<std::string, std::vector<std::string>>> orders =
      {
          {"[dirA, dirB]", {scenario.dir_a, scenario.dir_b}},
          {"[dirB, dirA]", {scenario.dir_b, scenario.dir_a}},
          {"[dirA]", {scenario.dir_a}},
          {"[dirB]", {scenario.dir_b}},
      };
  for (const auto& [label, dirs] : orders) {
    workload::set_paradox_search_order(session.fs(), scenario, dirs);
    session.invalidate();
    const auto report = session.load();
    const auto* a = report.find_loaded("liba.so");
    const auto* b = report.find_loaded("libb.so");
    row("search order " + label,
        std::string("liba<-") + (a ? a->path : "MISSING") + "  libb<-" +
            (b ? b->path : "MISSING") +
            (workload::paradox_satisfied(report, scenario) ? "  OK"
                                                           : "  WRONG"));
  }

  // Shrinkwrap-style absolute entries.
  elf::Patcher patcher(session.fs());
  patcher.set_needed(scenario.exe_path,
                     {scenario.good_a_path, scenario.good_b_path});
  patcher.set_runpath(scenario.exe_path, {});
  session.invalidate();
  const auto wrapped = session.load();
  row("absolute DT_NEEDED (shrinkwrapped)",
      workload::paradox_satisfied(wrapped, scenario) ? "OK — paradox resolved"
                                                     : "WRONG");
}

void BM_ParadoxLoad(benchmark::State& state) {
  auto session = core::WorldBuilder().paradox().build();
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.load().success);
  }
}
BENCHMARK(BM_ParadoxLoad)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  return depchaos::bench::run_benchmarks(argc, argv);
}
