// §V-B.2: libomp vs libompstubs — drop-in replacements defining the same
// strong symbols. Load order decides behaviour; the Needy Executables
// workaround dies on the link line; Shrinkwrap encodes the user's order
// without touching the link.

#include "bench_util.hpp"
#include "depchaos/core/world.hpp"
#include "depchaos/loader/symbols.hpp"
#include "depchaos/shrinkwrap/needy.hpp"
#include "depchaos/workload/scenarios.hpp"

namespace {

using namespace depchaos;

/// Compose the ompstubs world and open a Session targeting its executable.
core::Session make_session(workload::OmpScenario& scenario, bool stubs_first) {
  core::WorldBuilder builder;
  scenario = workload::make_ompstubs_scenario(builder.fs(), stubs_first);
  return builder.target(scenario.exe_path).build();
}

void print_report() {
  using depchaos::bench::heading;
  using depchaos::bench::row;

  heading("Use case §V-B.2 — libomp / libompstubs");
  for (const bool stubs_first : {false, true}) {
    workload::OmpScenario scenario;
    auto session = make_session(scenario, stubs_first);
    const auto bind = loader::bind_symbols(session.load());
    const auto* provider = bind.provider_of(scenario.probe_symbol);
    row(std::string("link order ") +
            (stubs_first ? "[stubs, omp]" : "[omp, stubs]") + " binds to",
        provider ? *provider : "(unbound)");
  }

  workload::OmpScenario scenario;
  auto session = make_session(scenario, false);
  const auto needy =
      shrinkwrap::make_needy(session.fs(), session.loader(), scenario.exe_path);
  row("Needy Executables (link line)",
      needy.ok ? "linked (unexpected)"
               : "FAILS: duplicate strong symbol '" +
                     needy.link.duplicate_strong.front() + "' (paper's flaw)");
  const auto wrap = session.shrinkwrap();
  row("Shrinkwrap", wrap.ok() ? "succeeds, user order preserved" : "failed");
  const auto bind = loader::bind_symbols(session.load());
  row("wrapped binary binds to", *bind.provider_of(scenario.probe_symbol));
}

void BM_OmpBindSymbols(benchmark::State& state) {
  workload::OmpScenario scenario;
  auto session = make_session(scenario, false);
  const auto report = session.load();
  for (auto _ : state) {
    benchmark::DoNotOptimize(loader::bind_symbols(report).bindings.size());
  }
}
BENCHMARK(BM_OmpBindSymbols)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  return depchaos::bench::run_benchmarks(argc, argv);
}
