// §V-B.2: libomp vs libompstubs — drop-in replacements defining the same
// strong symbols. Load order decides behaviour; the Needy Executables
// workaround dies on the link line; Shrinkwrap encodes the user's order
// without touching the link.

#include "bench_util.hpp"
#include "depchaos/loader/symbols.hpp"
#include "depchaos/shrinkwrap/needy.hpp"
#include "depchaos/shrinkwrap/shrinkwrap.hpp"
#include "depchaos/workload/scenarios.hpp"

namespace {

using namespace depchaos;

void print_report() {
  using depchaos::bench::heading;
  using depchaos::bench::row;

  heading("Use case §V-B.2 — libomp / libompstubs");
  for (const bool stubs_first : {false, true}) {
    vfs::FileSystem fs;
    const auto scenario = workload::make_ompstubs_scenario(fs, stubs_first);
    loader::Loader loader(fs);
    const auto bind = loader::bind_symbols(loader.load(scenario.exe_path));
    const auto* provider = bind.provider_of(scenario.probe_symbol);
    row(std::string("link order ") +
            (stubs_first ? "[stubs, omp]" : "[omp, stubs]") + " binds to",
        provider ? *provider : "(unbound)");
  }

  vfs::FileSystem fs;
  const auto scenario = workload::make_ompstubs_scenario(fs, false);
  loader::Loader loader(fs);
  const auto needy = shrinkwrap::make_needy(fs, loader, scenario.exe_path);
  row("Needy Executables (link line)",
      needy.ok ? "linked (unexpected)"
               : "FAILS: duplicate strong symbol '" +
                     needy.link.duplicate_strong.front() + "' (paper's flaw)");
  const auto wrap = shrinkwrap::shrinkwrap(fs, loader, scenario.exe_path);
  row("Shrinkwrap", wrap.ok() ? "succeeds, user order preserved" : "failed");
  const auto bind = loader::bind_symbols(loader.load(scenario.exe_path));
  row("wrapped binary binds to", *bind.provider_of(scenario.probe_symbol));
}

void BM_OmpBindSymbols(benchmark::State& state) {
  vfs::FileSystem fs;
  const auto scenario = workload::make_ompstubs_scenario(fs, false);
  loader::Loader loader(fs);
  const auto report = loader.load(scenario.exe_path);
  for (auto _ : state) {
    benchmark::DoNotOptimize(loader::bind_symbols(report).bindings.size());
  }
}
BENCHMARK(BM_OmpBindSymbols)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  return depchaos::bench::run_benchmarks(argc, argv);
}
