// §V intro: the cost of RUNNING Shrinkwrap itself. Paper: wrapping a binary
// with 900 needed entries, a 900-entry RPATH and a 213 MiB main executable
// took ~4 s with a warm filesystem cache and over a minute on cold NFS.
// The asymmetry (metadata ops dominate cold NFS) reproduces here.

#include "bench_util.hpp"
#include "depchaos/core/world.hpp"

namespace {

using namespace depchaos;

double wrap_cost_seconds(std::shared_ptr<vfs::LatencyModel> latency) {
  auto session =
      core::WorldBuilder().latency(std::move(latency)).pynamic({}).build();
  session.fs().clear_caches();
  return session.shrinkwrap().wrap_cost.sim_time_s;
}

void print_report() {
  using depchaos::bench::fmt;
  using depchaos::bench::heading;
  using depchaos::bench::row;

  heading("Shrinkwrap tool cost (paper: ~4 s warm, >1 min cold NFS)");
  const double warm = wrap_cost_seconds(std::make_shared<vfs::LocalDiskModel>());
  const double cold = wrap_cost_seconds(std::make_shared<vfs::NfsModel>());
  row("wrap 900-dep / 213 MiB binary, warm local cache",
      fmt(warm, 3) + " s (simulated)");
  row("wrap same binary, cold NFS", fmt(cold, 3) + " s (simulated)");
  row("cold/warm ratio", fmt(cold / warm, 1) + "x");
}

void BM_ShrinkwrapTool(benchmark::State& state) {
  // Wall-clock cost of the wrap operation itself on a fresh world.
  for (auto _ : state) {
    state.PauseTiming();
    workload::PynamicConfig config;
    config.num_modules = static_cast<std::size_t>(state.range(0));
    config.exe_extra_bytes = 0;
    auto session = core::WorldBuilder().pynamic(config).build();
    state.ResumeTiming();
    benchmark::DoNotOptimize(session.shrinkwrap().ok());
  }
}
BENCHMARK(BM_ShrinkwrapTool)
    ->Arg(100)
    ->Arg(300)
    ->Arg(900)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

void BM_VerifyWrapped(benchmark::State& state) {
  workload::PynamicConfig config;
  config.num_modules = 300;
  config.exe_extra_bytes = 0;
  auto session = core::WorldBuilder().pynamic(config).build();
  if (!session.shrinkwrap().ok()) {
    state.SkipWithError("wrap failed");
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.verify().ok);
  }
}
BENCHMARK(BM_VerifyWrapped)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  return depchaos::bench::run_benchmarks(argc, argv);
}
