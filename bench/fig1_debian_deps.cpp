// Fig 1: "Debian package dependencies by type".
//
// Paper: ~209,000 packages as of November 2021; nearly 3/4 of dependency
// specifications are completely unversioned, most of the rest are ranges,
// and exact pins are rare. We synthesize a statistically matching archive,
// render it to REAL control-file text, reparse it with the production
// parser, and count — the same pipeline an analysis of the actual archive
// would run.

#include <cinttypes>

#include "bench_util.hpp"
#include "depchaos/pkg/deb.hpp"
#include "depchaos/pkg/deb_version.hpp"
#include "depchaos/support/thread_pool.hpp"
#include "depchaos/workload/debian.hpp"

namespace {

using namespace depchaos;

const std::vector<pkg::deb::Package>& corpus() {
  static const auto packages = [] {
    workload::DebianCorpusConfig config;
    config.num_packages = 209000;
    return workload::generate_debian_corpus(config);
  }();
  return packages;
}

void print_figure() {
  using depchaos::bench::fmt;
  using depchaos::bench::heading;
  using depchaos::bench::row;

  const auto counts = pkg::deb::classify(corpus());
  const double total = static_cast<double>(counts.total());

  heading("Fig 1 — Debian package dependencies by type");
  row("packages in corpus", std::to_string(corpus().size()));
  row("dependency specifications", std::to_string(counts.total()));
  std::printf("\n  %-16s %10s %8s   (paper: unversioned ~74%%)\n", "kind",
              "count", "share");
  const auto bar = [&](const char* name, std::uint64_t count) {
    const double share = count / total;
    std::printf("  %-16s %10" PRIu64 " %7.1f%%  |%s\n", name, count,
                share * 100,
                std::string(static_cast<std::size_t>(share * 50), '#').c_str());
  };
  bar("Unversioned", counts.unversioned);
  bar("Version Range", counts.range);
  bar("Exact", counts.exact);

  // §II-A: the archive works "because, and only because, the maintainers
  // diligently and manually ensure" it does — run the curation check.
  support::ThreadPool pool;
  const auto consistency = pkg::deb::check_archive_parallel(pool, corpus());
  std::printf("\n  curation check: %llu dependencies verified, %zu broken"
              " (a maintained archive: 0)\n",
              static_cast<unsigned long long>(consistency.deps_checked),
              consistency.broken.size());
}

void BM_ConsistencyCheck(benchmark::State& state) {
  support::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pkg::deb::check_archive_parallel(pool, corpus()).deps_checked);
  }
}
BENCHMARK(BM_ConsistencyCheck)->Arg(1)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_ParseControlCorpus(benchmark::State& state) {
  // Parse 10k packages' worth of control text per iteration.
  workload::DebianCorpusConfig config;
  config.num_packages = 10000;
  const auto text =
      workload::corpus_to_control_text(workload::generate_debian_corpus(config));
  for (auto _ : state) {
    const auto parsed = pkg::deb::parse_control(text);
    benchmark::DoNotOptimize(parsed.size());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_ParseControlCorpus)->Unit(benchmark::kMillisecond);

void BM_ClassifySerial(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(pkg::deb::classify(corpus()).total());
  }
}
BENCHMARK(BM_ClassifySerial)->Unit(benchmark::kMillisecond);

void BM_ClassifyParallel(benchmark::State& state) {
  support::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pkg::deb::classify_parallel(pool, corpus()).total());
  }
}
BENCHMARK(BM_ClassifyParallel)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  return depchaos::bench::run_benchmarks(argc, argv);
}
