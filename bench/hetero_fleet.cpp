// Heterogeneous fleets at scale: fingerprint-clustered rank measurement.
//
// A 1024-rank mixed-Pynamic MPMD fleet in 4 program classes, launched as
// containerized per-rank sandboxes (rootfs image + CoW overlay). The
// legacy path replays the loader once per RANK — O(nprocs) full metadata
// walks for a launch model whose inputs only vary per CLASS. The
// clustered path keys each rank's sandbox by (overlay fingerprint,
// environment), measures ONE representative per equivalence class, and
// replicates the per-class streams — O(#classes).
//
// Acceptance gates (exit non-zero on regression):
//  * the clustered launch measures exactly 4 classes and replays the
//    loader at most 8 times for the 1024-rank fleet;
//  * clustering is invisible in the results: every counter, shared/
//    overlay split, fleet total, and modelled time is byte-identical to
//    the per-rank path (FleetConfig::cluster_ranks = false);
//  * the clustered path is >= 10x faster in wall-clock than the
//    per-rank path at 1024 ranks.
//
// DEPCHAOS_SMOKE=1 shrinks the app; the fleet stays at 1024 ranks in 4
// classes (the whole point is rank-count-independent measurement).

#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "depchaos/core/world.hpp"
#include "depchaos/launch/launch.hpp"
#include "depchaos/workload/scenarios.hpp"

namespace {

using namespace depchaos;

constexpr int kRanks = 1024;
constexpr int kClasses = 4;

bool smoke_mode() { return std::getenv("DEPCHAOS_SMOKE") != nullptr; }

workload::PynamicConfig app_config() {
  workload::PynamicConfig config;
  if (smoke_mode()) {
    config.num_modules = 64;
    config.exe_extra_bytes = 4ull << 20;
  }
  return config;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

int print_report() {
  using depchaos::bench::fmt;
  using depchaos::bench::heading;
  using depchaos::bench::row;

  const auto scenario = workload::make_container_launch_scenario(app_config());
  auto host = core::WorldBuilder().nfs().build();
  core::SandboxSpec spec;
  spec.image = scenario.image;
  spec.image_mount = scenario.image_mount;
  spec.writable_image_overlay = true;  // class divergence lives here
  spec.exe = scenario.exe;

  const workload::PynamicApp& app = scenario.app;
  launch::FleetConfig clustered;
  clustered.cluster = host.config().cluster;
  clustered.rank_setup = [&app](core::Session& sandbox, int rank) {
    workload::apply_mpmd_rank(sandbox.fs(), sandbox.env(), app, rank,
                              kClasses);
  };
  launch::FleetConfig per_rank = clustered;
  per_rank.cluster_ranks = false;

  const auto t_fast = std::chrono::steady_clock::now();
  const auto fast = host.launch_fleet(spec, "", kRanks, clustered);
  const double fast_s = seconds_since(t_fast);

  const auto t_slow = std::chrono::steady_clock::now();
  const auto slow = host.launch_fleet(spec, "", kRanks, per_rank);
  const double slow_s = seconds_since(t_slow);

  heading("heterogeneous fleet — 1024 ranks, 4 program classes");
  row("modules / needed entries", std::to_string(app.module_paths.size()));
  row("rank classes measured", std::to_string(fast.classes_measured));
  row("loader replays (clustered)", std::to_string(fast.ranks_measured));
  row("loader replays (per-rank)", std::to_string(slow.ranks_measured));
  std::string sizes;
  for (const int size : fast.class_sizes) {
    sizes += (sizes.empty() ? "" : " + ") + std::to_string(size);
  }
  row("class sizes", sizes);
  row("meta ops per rank", std::to_string(fast.meta_ops_per_rank));
  row("per-rank overlay ops", std::to_string(fast.overlay_meta_ops_per_rank));
  row("measurement wall-clock (clustered)", fmt(fast_s * 1e3, 1) + " ms");
  row("measurement wall-clock (per-rank)", fmt(slow_s * 1e3, 1) + " ms");
  const double speedup = slow_s / fast_s;
  row("measurement speedup", fmt(speedup, 1) + "x");

  heading("acceptance gates");
  const bool gate_classes = fast.load_succeeded &&
                            fast.classes_measured == kClasses &&
                            fast.ranks_measured <= 8;
  row("1024 ranks measured in <= 8 loader replays",
      gate_classes ? "PASS (" + std::to_string(fast.ranks_measured) + ")"
                   : "FAIL");

  int covered = 0;
  for (const int size : fast.class_sizes) covered += size;
  const bool gate_sizes = covered == kRanks &&
                          static_cast<int>(fast.class_sizes.size()) ==
                              fast.classes_measured;
  row("class sizes tile the fleet", gate_sizes ? "PASS" : "FAIL");

  const bool gate_identity =
      fast.load_succeeded == slow.load_succeeded &&
      fast.meta_ops_per_rank == slow.meta_ops_per_rank &&
      fast.bytes_per_rank == slow.bytes_per_rank &&
      fast.shared_meta_ops_per_rank == slow.shared_meta_ops_per_rank &&
      fast.overlay_meta_ops_per_rank == slow.overlay_meta_ops_per_rank &&
      fast.shared_bytes_per_rank == slow.shared_bytes_per_rank &&
      fast.overlay_bytes_per_rank == slow.overlay_bytes_per_rank &&
      fast.fleet_meta_ops == slow.fleet_meta_ops &&
      fast.fleet_bytes == slow.fleet_bytes &&
      fast.fleet_shared_meta_ops == slow.fleet_shared_meta_ops &&
      fast.fleet_overlay_meta_ops == slow.fleet_overlay_meta_ops &&
      fast.data_time_s == slow.data_time_s &&
      fast.meta_time_s == slow.meta_time_s &&
      fast.total_time_s == slow.total_time_s;
  row("clustered byte-identical to per-rank", gate_identity ? "PASS" : "FAIL");

  const bool gate_speed = speedup >= 10.0;
  row("clustered >= 10x faster wall-clock",
      gate_speed ? "PASS (" + fmt(speedup, 1) + "x)" : "FAIL");

  return (gate_classes && gate_sizes && gate_identity && gate_speed) ? 0 : 1;
}

void BM_ClusteredMixedFleet(benchmark::State& state) {
  const auto scenario = workload::make_container_launch_scenario(app_config());
  auto host = core::WorldBuilder().nfs().build();
  core::SandboxSpec spec;
  spec.image = scenario.image;
  spec.image_mount = scenario.image_mount;
  spec.writable_image_overlay = true;
  spec.exe = scenario.exe;
  const workload::PynamicApp& app = scenario.app;
  launch::FleetConfig fleet;
  fleet.cluster = host.config().cluster;
  fleet.cluster_ranks = state.range(0) != 0;
  fleet.rank_setup = [&app](core::Session& sandbox, int rank) {
    workload::apply_mpmd_rank(sandbox.fs(), sandbox.env(), app, rank,
                              kClasses);
  };
  const int ranks = static_cast<int>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        host.launch_fleet(spec, "", ranks, fleet).fleet_meta_ops);
  }
}
BENCHMARK(BM_ClusteredMixedFleet)
    ->Args({1, 256})
    ->Args({1, 1024})
    ->Args({0, 256})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

}  // namespace

int main(int argc, char** argv) {
  const int failures = print_report();
  const int bench_rc = depchaos::bench::run_benchmarks(argc, argv);
  return failures ? failures : bench_rc;
}
