// Session-service storm: sustained closures/s through svc::SessionPool at
// 1 / 64 / 1024 concurrent clients of one shared debian world.
//
// The workload is the paper's launch storm translated to the service shape:
// every client issues the SAME list of R distinct load requests (a fleet of
// identical ranks starting the same app mix). The single-client baseline
// runs closed-loop — one request in flight, each paying a full submit ->
// worker -> future round trip plus a real closure resolution. The fleet
// runs open-loop: requests from all clients interleave through the sharded
// admission queues, strands drain them in batches, and the pristine-fork
// Load memo serves every repeated (exe, env) resolution from one execution
// (the Spindle dedup insight — identical metadata requests from a fleet
// are resolved once). The executed-vs-memoized split is printed so the
// dedup share is explicit, not hidden in a throughput number.
//
// Gates (exit non-zero on failure; CI runs DEPCHAOS_SMOKE=1):
//   * byte-identity — every concurrent 64-client report is byte-identical
//     to the same request list run sequentially on a private fork of a
//     twin world (the svc_test property, at bench scale).
//   * throughput    — 64-client closures/s >= 8x the 1-client rate.
//   * multi-core    — with a T-worker pool (T = --threads or hardware
//     concurrency), cold mixed-op throughput >= 3x the 1-worker pool and
//     hot/memoized throughput >= 5x, measured with a latency model
//     installed (so the row also proves memoization stays ACTIVE under
//     re-pricing). Enforced only on hosts with >= 4 effective cores and
//     T >= 4; the 5x hot bar presumes >= 6 cores — a 4-core budget cannot
//     express a 5x speedup over an already-saturated single worker, so
//     below 6 cores the hot bar scales down to 3x (printed either way).
// The third acceptance gate (single-client loader_hotpath within 5% of
// its baseline) is enforced by bench/loader_hotpath.cpp itself, which CI
// runs alongside this binary.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "depchaos/core/world.hpp"
#include "depchaos/svc/session_pool.hpp"
#include "depchaos/svc/wire.hpp"
#include "depchaos/vfs/latency.hpp"

namespace {

using namespace depchaos;
using Clock = std::chrono::steady_clock;

bool smoke_mode() { return std::getenv("DEPCHAOS_SMOKE") != nullptr; }

// --threads=N override for the multi-core row (0 = hardware concurrency).
std::size_t g_threads = 0;

// Sanitizer runtimes (TSan especially) serialize enough of the schedule
// that a WORKER-count speedup ratio stops measuring the service: those
// legs keep the byte-identity / memo-active / wait-free gates and the
// race detection itself, while the speedup bars gate the plain builds.
constexpr bool sanitized_build() {
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
  return true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
  return true;
#else
  return false;
#endif
#else
  return false;
#endif
}

core::Session make_debian_session() {
  workload::InstalledSystemConfig config;
  if (smoke_mode()) {
    config.num_binaries = 200;
    config.num_shared_objects = 120;
  }
  return core::WorldBuilder().debian(config).build();
}

std::vector<std::string> request_list(std::size_t count) {
  std::vector<std::string> exes;
  exes.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    exes.push_back("/usr/bin/bin" + std::to_string(i));
  }
  return exes;
}

// Everything a service consumer can observe about a load, flattened for
// equality (mirrors tests/svc_test.cpp).
std::string digest(const loader::LoadReport& r) {
  std::ostringstream out;
  out << r.success;
  for (const auto& o : r.load_order) {
    out << '|' << o.name << ',' << o.path << ',' << o.real_path << ','
        << static_cast<int>(o.how) << ',' << o.depth;
  }
  out << '|' << r.requests.size() << ',' << r.missing.size() << ','
      << r.stats.stat_calls << ',' << r.stats.open_calls << ','
      << r.stats.read_calls << ',' << r.stats.readlink_calls << ','
      << r.stats.failed_probes << ',' << r.stats.sim_time_s;
  return out.str();
}

struct StormResult {
  double closures_per_s = 0;
  svc::PoolStats stats;
  std::uint64_t base_owned_bytes = 0;
  std::vector<std::string> digests;  // filled when `collect` is set
};

svc::PoolConfig storm_config() {
  svc::PoolConfig config;
  config.shards = 8;
  config.queue_high_water = std::size_t{1} << 22;  // open-loop: never reject
  return config;
}

/// Closed loop: the natural single-tenant rhythm — one request in flight.
StormResult run_single(const std::vector<std::string>& exes) {
  svc::SessionPool pool(make_debian_session(), storm_config());
  StormResult result;
  const auto start = Clock::now();
  for (const auto& exe : exes) {
    if (!pool.submit_load_shared(1, exe).get()->success) std::abort();
  }
  const double elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  result.closures_per_s = static_cast<double>(exes.size()) / elapsed;
  pool.drain();
  result.stats = pool.stats();
  result.base_owned_bytes = pool.base().fs().owned_bytes();
  return result;
}

/// Open loop: `clients` clients each submit the whole request list; the
/// clock covers submission through last result delivered.
StormResult run_storm(std::size_t clients, const std::vector<std::string>& exes,
                      bool collect) {
  svc::SessionPool pool(make_debian_session(), storm_config());
  StormResult result;
  std::vector<std::future<std::shared_ptr<const loader::LoadReport>>> futures;
  futures.reserve(clients * exes.size());
  std::vector<std::shared_ptr<const loader::LoadReport>> reports;
  reports.reserve(clients * exes.size());
  // The timed window is submission through last result delivered; digest
  // extraction (and report teardown) happen after the clock stops — they
  // are measurement artifacts, not service work.
  const auto start = Clock::now();
  for (const auto& exe : exes) {
    for (std::size_t c = 0; c < clients; ++c) {
      futures.push_back(
          pool.submit_load_shared(static_cast<svc::ClientId>(c + 1), exe));
    }
  }
  // One quiescence wait instead of blocking on each future in turn: the
  // collection loop below then never sleeps (every future is ready).
  pool.drain();
  for (auto& future : futures) reports.push_back(future.get());
  const double elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  result.closures_per_s = static_cast<double>(reports.size()) / elapsed;
  if (collect) result.digests.reserve(reports.size());
  for (const auto& report : reports) {
    if (!report->success) std::abort();
    if (collect) result.digests.push_back(digest(*report));
  }
  pool.drain();
  result.stats = pool.stats();
  result.base_owned_bytes = pool.base().fs().owned_bytes();
  return result;
}

// ---- loopback-socket rows --------------------------------------------------

struct WireRowResult {
  double closed_per_s = 0;  // one connection, one request in flight
  double storm_per_s = 0;   // C connections, full list pipelined per conn
  std::size_t payload_mismatches = 0;
  svc::WireStats wire;
};

/// The same storm through the wire: a WireServer over one pool on
/// loopback TCP, so the BENCH json tracks what framing + socket round
/// trips cost relative to in-process submits. Every response payload is
/// checked byte-for-byte against encoding the in-process result from a
/// twin pool — the wire must be invisible, not just fast.
WireRowResult run_wire_loopback(const std::vector<std::string>& exes,
                                std::size_t storm_clients) {
  svc::SessionPool oracle(make_debian_session(), storm_config());
  svc::SessionPool served(make_debian_session(), storm_config());
  svc::WireServer server(served);
  WireRowResult result;

  // Expected payload per exe: on pristine forks the report is a pure
  // function of the exe (the memo property the 64-client gate already
  // leans on), so one in-process pass is the oracle for every client.
  std::vector<std::string> expected;
  expected.reserve(exes.size());
  for (const auto& exe : exes) {
    expected.push_back(
        svc::encode_load_report(*oracle.submit_load_shared(1, exe).get()));
  }

  // Closed loop: the single-tenant rhythm, now paying encode + two socket
  // hops + decode per request. Payloads are kept and compared after the
  // clock stops.
  {
    svc::WireClient client("127.0.0.1", server.port());
    std::vector<std::string> payloads;
    payloads.reserve(exes.size());
    const auto start = Clock::now();
    for (const auto& exe : exes) {
      svc::WireResponse response =
          client.call(svc::WireKind::Load, 1, exe);
      if (response.status != svc::WireStatus::Ok) std::abort();
      payloads.push_back(std::move(response.payload));
    }
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();
    result.closed_per_s = static_cast<double>(exes.size()) / elapsed;
    for (std::size_t i = 0; i < payloads.size(); ++i) {
      if (payloads[i] != expected[i]) ++result.payload_mismatches;
    }
  }

  // Storm: C connections, each pipelining the whole list (send all, then
  // collect out-of-order-tolerant by sequence number).
  {
    std::vector<std::thread> drivers;
    std::atomic<std::size_t> mismatches{0};
    drivers.reserve(storm_clients);
    const auto start = Clock::now();
    for (std::size_t c = 0; c < storm_clients; ++c) {
      drivers.emplace_back([&, c] {
        svc::WireClient client("127.0.0.1", server.port());
        const auto id = static_cast<svc::ClientId>(c + 2);  // 1 = closed loop
        std::vector<std::uint64_t> seqs;
        seqs.reserve(exes.size());
        for (const auto& exe : exes) {
          seqs.push_back(client.send(svc::WireKind::Load, id, exe));
        }
        for (std::size_t i = 0; i < seqs.size(); ++i) {
          svc::WireResponse response = client.recv_for(seqs[i]);
          if (response.status != svc::WireStatus::Ok) std::abort();
          if (response.payload != expected[i]) mismatches.fetch_add(1);
        }
      });
    }
    for (auto& driver : drivers) driver.join();
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();
    result.storm_per_s =
        static_cast<double>(storm_clients * exes.size()) / elapsed;
    result.payload_mismatches += mismatches.load();
  }

  result.wire = server.stats();
  server.stop();
  return result;
}

// ---- multi-core rows -------------------------------------------------------

struct MultiCoreResult {
  double cold_ops_per_s = 0;  // distinct-closure loads + queries (all misses)
  double hot_ops_per_s = 0;   // memo-served loads, re-priced per client
  svc::PoolStats stats;
  bool memo_active = false;
};

/// One pool at `workers` ThreadPool workers, with an NfsModel on the base
/// so every phase exercises memoization UNDER a latency model (hits replay
/// the recorded charge log through the client's own cloned model). Two
/// timed phases against the same pool:
///   cold — every client resolves its own disjoint slice of closures
///          (every load a memo miss: sealed fork stamp, PathTable interning,
///          full resolution, memo insert) with a query mixed in per client;
///   hot  — every client re-loads a small shared set already in the memo
///          (shared-lock probe + per-client re-pricing, no resolution).
MultiCoreResult run_multicore(std::size_t workers, std::size_t clients,
                              std::size_t cold_per_client,
                              const std::vector<std::string>& cold_exes,
                              std::size_t hot_set, std::size_t hot_rounds) {
  svc::PoolConfig config = storm_config();
  config.threads = workers;
  core::Session base = make_debian_session();
  base.fs().set_latency_model(std::make_shared<vfs::NfsModel>());
  svc::SessionPool pool(std::move(base), config);
  MultiCoreResult result;

  std::vector<std::future<std::shared_ptr<const loader::LoadReport>>> loads;
  loads.reserve(clients * cold_per_client);
  std::vector<std::future<svc::QueryResult>> queries;
  queries.reserve(clients);
  const auto cold_start = Clock::now();
  for (std::size_t c = 0; c < clients; ++c) {
    const auto client = static_cast<svc::ClientId>(c + 1);
    for (std::size_t r = 0; r < cold_per_client; ++r) {
      loads.push_back(
          pool.submit_load_shared(client, cold_exes[c * cold_per_client + r]));
    }
    queries.push_back(pool.submit_query(client));
  }
  pool.drain();
  const double cold_elapsed =
      std::chrono::duration<double>(Clock::now() - cold_start).count();
  for (auto& future : loads) {
    if (!future.get()->success) std::abort();
  }
  for (auto& future : queries) future.get();
  result.cold_ops_per_s =
      static_cast<double>(loads.size() + queries.size()) / cold_elapsed;

  // Hot phase: the first `hot_set` closures are in the memo and every
  // client already holds its fork — each op is a sharded-memo hit whose
  // sim_time_s is replayed against that client's model warmth.
  loads.clear();
  loads.reserve(clients * hot_set * hot_rounds);
  const auto hot_start = Clock::now();
  for (std::size_t round = 0; round < hot_rounds; ++round) {
    for (std::size_t c = 0; c < clients; ++c) {
      for (std::size_t i = 0; i < hot_set; ++i) {
        loads.push_back(pool.submit_load_shared(
            static_cast<svc::ClientId>(c + 1), cold_exes[i]));
      }
    }
  }
  pool.drain();
  const double hot_elapsed =
      std::chrono::duration<double>(Clock::now() - hot_start).count();
  for (auto& future : loads) {
    if (!future.get()->success) std::abort();
  }
  result.hot_ops_per_s = static_cast<double>(loads.size()) / hot_elapsed;

  result.stats = pool.stats();
  result.memo_active = pool.memoization_enabled() && pool.repricing_active() &&
                       result.stats.memo_hits > 0;
  return result;
}

void report_storm(const char* label, std::size_t clients,
                  const StormResult& result) {
  using bench::fmt;
  using bench::row;
  const svc::PoolStats& stats = result.stats;
  row(std::string(label) + " closures/s", fmt(result.closures_per_s, 0));
  row(std::string(label) + " executed / memoized",
      std::to_string(stats.executed - stats.memoized) + " / " +
          std::to_string(stats.memoized));
  const auto& load_latency =
      stats.latency[static_cast<std::size_t>(svc::RequestKind::Load)];
  row(std::string(label) + " load p50/p99 us",
      fmt(load_latency.p50_us, 0) + " / " + fmt(load_latency.p99_us, 0));
  // How much private divergence the whole fleet holds relative to one
  // shared world: pristine CoW forks should make this ~0.
  const double share =
      result.base_owned_bytes == 0
          ? 0.0
          : static_cast<double>(stats.fork_owned_bytes) /
                static_cast<double>(result.base_owned_bytes);
  row(std::string(label) + " copied-bytes share",
      fmt(100.0 * share, 3) + "% (" + std::to_string(clients) + " forks)");
}

int print_report() {
  using bench::fmt;
  using bench::heading;
  using bench::row;
  int failures = 0;

  const std::size_t requests = smoke_mode() ? 32 : 128;
  const auto exes = request_list(requests);

  heading("Session storm: closures/s vs concurrent clients (debian world)");
  row("requests per client", std::to_string(requests) + " distinct closures");

  const StormResult single = run_single(exes);
  report_storm("1 client (closed loop)", 1, single);

  const StormResult fleet64 = run_storm(64, exes, /*collect=*/true);
  report_storm("64 clients", 64, fleet64);

  const std::size_t big_requests = smoke_mode() ? 4 : 16;
  const StormResult fleet1024 =
      run_storm(1024, request_list(big_requests), /*collect=*/false);
  report_storm("1024 clients", 1024, fleet1024);

  // ---- loopback socket: the same service behind the wire protocol ---------
  heading("Loopback socket: wire protocol overhead vs in-process submits");
  const std::size_t wire_clients = smoke_mode() ? 8 : 32;
  const WireRowResult wire = run_wire_loopback(exes, wire_clients);
  row("wire closed-loop closures/s", fmt(wire.closed_per_s, 0));
  row("wire closed-loop vs in-process",
      fmt(100.0 * wire.closed_per_s / single.closures_per_s, 1) +
          "% of in-process rate");
  row("wire " + std::to_string(wire_clients) + "-conn storm closures/s",
      fmt(wire.storm_per_s, 0));
  row("wire frames in / out",
      std::to_string(wire.wire.frames_in) + " / " +
          std::to_string(wire.wire.frames_out));
  row("wire decode errors / timeouts",
      std::to_string(wire.wire.decode_errors) + " / " +
          std::to_string(wire.wire.timeouts));

  heading("Gates");

  // Wire byte-identity: every loopback payload must equal the canonical
  // encoding of the in-process result from a twin pool.
  row("wire payloads == in-process encodings",
      wire.payload_mismatches == 0
          ? "yes"
          : "NO - " + std::to_string(wire.payload_mismatches) + " mismatches");
  if (wire.payload_mismatches != 0) {
    std::printf("  GATE FAILED: wire payloads diverge from in-process "
                "results\n");
    ++failures;
  }
  if (wire.wire.decode_errors != 0) {
    std::printf("  GATE FAILED: loopback run produced %llu decode errors\n",
                static_cast<unsigned long long>(wire.wire.decode_errors));
    ++failures;
  }

  // Byte-identity: the 64-client concurrent reports vs the same request
  // list run sequentially on a fork of a twin world. Every client issued
  // the identical list, so one sequential pass is the reference for all.
  core::Session twin = make_debian_session();
  twin.seal();  // mirror the pool's ctor seal (what the priming fork did)
  core::Session reference = twin.fork_sealed();
  std::vector<std::string> expected;
  expected.reserve(exes.size());
  for (const auto& exe : exes) expected.push_back(digest(reference.load(exe)));
  std::size_t mismatches = 0;
  // run_storm submits request-major: digest index r*64 + c is request r.
  for (std::size_t i = 0; i < fleet64.digests.size(); ++i) {
    if (fleet64.digests[i] != expected[i / 64]) ++mismatches;
  }
  row("concurrent == sequential (64 clients)",
      mismatches == 0 ? "yes"
                      : "NO - " + std::to_string(mismatches) + " mismatches");
  if (mismatches != 0) {
    std::printf("  GATE FAILED: concurrent results diverge from sequential\n");
    ++failures;
  }

  const double speedup = fleet64.closures_per_s / single.closures_per_s;
  row("64-client speedup over 1 client (gate >= 8x)",
      fmt(speedup, 1) + "x");
  if (speedup < 8.0) {
    std::printf("  GATE FAILED: 64-client throughput below 8x single client\n");
    ++failures;
  }

  // ---- multi-core rows: T workers vs 1 worker, latency model installed ----
  const std::size_t cores =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const std::size_t threads = g_threads ? g_threads : cores;
  const std::size_t mc_clients = smoke_mode() ? 32 : 64;
  const std::size_t cold_per_client = 4;
  const std::size_t hot_set = 8;
  const std::size_t hot_rounds = smoke_mode() ? 4 : 8;
  const auto mc_exes = request_list(mc_clients * cold_per_client);

  heading("Multi-core: T-worker pool vs 1-worker pool (NFS latency model)");
  row("workers (T)", std::to_string(threads) + " (" + std::to_string(cores) +
                         " effective cores)");
  const MultiCoreResult one = run_multicore(1, mc_clients, cold_per_client,
                                            mc_exes, hot_set, hot_rounds);
  const MultiCoreResult many = run_multicore(
      threads, mc_clients, cold_per_client, mc_exes, hot_set, hot_rounds);
  row("1 worker cold / hot ops/s",
      fmt(one.cold_ops_per_s, 0) + " / " + fmt(one.hot_ops_per_s, 0));
  row(std::to_string(threads) + " workers cold / hot ops/s",
      fmt(many.cold_ops_per_s, 0) + " / " + fmt(many.hot_ops_per_s, 0));
  const double cold_speedup = many.cold_ops_per_s / one.cold_ops_per_s;
  const double hot_speedup = many.hot_ops_per_s / one.hot_ops_per_s;
  row("cold / hot speedup", fmt(cold_speedup, 2) + "x / " +
                                fmt(hot_speedup, 2) + "x");
  row("T-worker forks wait-free / locked",
      std::to_string(many.stats.forks_wait_free) + " / " +
          std::to_string(many.stats.forks_locked));
  row("T-worker memo hits / misses",
      std::to_string(many.stats.memo_hits) + " / " +
          std::to_string(many.stats.memo_misses));
  row("T-worker pool steals", std::to_string(many.stats.pool_steals));
  row("memoization active under latency model",
      many.memo_active ? "yes" : "NO");
  if (!many.memo_active || !one.memo_active) {
    std::printf(
        "  GATE FAILED: memoization inactive under the latency model\n");
    ++failures;
  }
  if (many.stats.forks_locked != 0) {
    std::printf("  GATE FAILED: admission took the fork mutex %llu times "
                "(sealed stamp expected)\n",
                static_cast<unsigned long long>(many.stats.forks_locked));
    ++failures;
  }
  if (cores >= 4 && threads >= 4 && !sanitized_build()) {
    // A T-worker speedup is bounded by the core budget: 5x needs >= 6
    // cores' worth of headroom (T workers + submitter), so smaller hosts
    // gate hot at the cold bar instead of a bar they cannot express.
    const double hot_bar = cores >= 6 ? 5.0 : 3.0;
    if (cold_speedup < 3.0) {
      std::printf("  GATE FAILED: cold multi-core speedup %.2fx below 3x\n",
                  cold_speedup);
      ++failures;
    }
    if (hot_speedup < hot_bar) {
      std::printf("  GATE FAILED: hot multi-core speedup %.2fx below %.0fx\n",
                  hot_speedup, hot_bar);
      ++failures;
    }
  } else {
    row("multi-core speedup gates",
        sanitized_build()
            ? "reported, not enforced (sanitized build warps scheduling)"
            : "skipped (need >= 4 cores and T >= 4; have " +
                  std::to_string(cores) +
                  " cores, T=" + std::to_string(threads) + ")");
  }
  return failures;
}

void BM_PoolLoadClosedLoop(benchmark::State& state) {
  auto session = make_debian_session();
  svc::SessionPool pool(std::move(session), storm_config());
  const std::string exe = "/usr/bin/bin0";
  svc::ClientId client = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.submit_load(client, exe).get());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PoolLoadClosedLoop)->Unit(benchmark::kMicrosecond);

void BM_PoolLoadStorm64(benchmark::State& state) {
  auto session = make_debian_session();
  svc::SessionPool pool(std::move(session), storm_config());
  const std::string exe = "/usr/bin/bin0";
  for (auto _ : state) {
    std::vector<std::future<loader::LoadReport>> futures;
    futures.reserve(64);
    for (std::size_t c = 0; c < 64; ++c) {
      futures.push_back(pool.submit_load(static_cast<svc::ClientId>(c + 1), exe));
    }
    for (auto& future : futures) benchmark::DoNotOptimize(future.get());
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_PoolLoadStorm64)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  // Peel off --threads=N (ours) before google-benchmark sees the argv.
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      g_threads = static_cast<std::size_t>(std::atoll(argv[i] + 10));
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  const int failures = print_report();
  const int bench_rc = depchaos::bench::run_benchmarks(argc, argv);
  return failures ? failures : bench_rc;
}
