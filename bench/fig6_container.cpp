// Fig 6 in three substrates: bare host, containerized (rootfs image +
// per-rank CoW overlay), and containerized with the app SHRINKWRAPPED
// INSIDE the image.
//
// The paper's headline sweep measures the per-rank metadata storm; this
// bench re-runs it with every rank inside its own container sandbox —
// the regime where image mounts, overlays, and masks change *which*
// metadata ops a rank issues. Because resolution crosses mounts
// transparently and the image is the container's own rootfs, the
// containerized op stream must match the bare one op for op, and the
// shrinkwrap reduction must survive the move into the container.
//
// Acceptance gates (exit non-zero on regression):
//  * the containerized shrinkwrap sweep preserves the bare-host op-count
//    reduction ratio within 5% (it is exact today);
//  * per-rank sandbox setup is O(1) via CoW fork — a fresh sandbox owns
//    <1% of the image's bytes (no image copies);
//  * bare-host numbers are internally byte-identical: the sweep's
//    measure-once extrapolation equals per-rank re-measurement bit for
//    bit (the cross-branch identity is diffed via BENCH_*.json);
//  * the shared/overlay split tiles the measured total, with zero
//    overlay ops for homogeneous ranks;
//  * measurement is O(#classes), not O(#ranks): homogeneous containerized
//    fleets replay the loader exactly once, and a mixed MPMD fleet is
//    measured once per program class.
//
// DEPCHAOS_SMOKE=1 shrinks the app (the sweep stays at 512..2048 ranks).

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "depchaos/core/world.hpp"
#include "depchaos/workload/scenarios.hpp"

namespace {

using namespace depchaos;

bool smoke_mode() { return std::getenv("DEPCHAOS_SMOKE") != nullptr; }

workload::PynamicConfig app_config() {
  workload::PynamicConfig config;
  if (smoke_mode()) {
    config.num_modules = 120;
    config.exe_extra_bytes = 8ull << 20;
  }
  return config;
}

core::SandboxSpec container_spec(
    const workload::ContainerLaunchScenario& scenario, bool wrapped) {
  core::SandboxSpec spec;
  spec.image = wrapped ? scenario.wrapped_image : scenario.image;
  spec.image_mount = scenario.image_mount;  // "/": the container's rootfs
  spec.writable_image_overlay = true;       // per-rank CoW overlay
  spec.exe = scenario.exe;
  return spec;
}

int print_report() {
  using depchaos::bench::fmt;
  using depchaos::bench::heading;
  using depchaos::bench::row;

  const std::vector<int> ranks = {512, 1024, 2048};
  const auto config = app_config();

  // ---- substrate 1: bare host (the paper's Fig 6, measure-once sweep) ----
  core::WorldBuilder builder;
  auto bare = builder.pynamic(config).nfs().build();
  const auto bare_normal = bare.launch_sweep("", ranks);
  // Byte-identity gate: extrapolating one measurement across the sweep
  // equals re-measuring at every rank count, bit for bit.
  bool sweep_identical = true;
  {
    auto probe = core::WorldBuilder().pynamic(config).nfs().build();
    for (std::size_t i = 0; i < ranks.size(); ++i) {
      const auto single = probe.launch("", ranks[i]);
      sweep_identical = sweep_identical &&
                        single.meta_ops_per_rank ==
                            bare_normal[i].meta_ops_per_rank &&
                        single.bytes_per_rank == bare_normal[i].bytes_per_rank &&
                        single.total_time_s == bare_normal[i].total_time_s;
    }
  }
  if (!bare.shrinkwrap().ok()) {
    std::fprintf(stderr, "bare shrinkwrap failed\n");
    return 1;
  }
  const auto bare_wrapped = bare.launch_sweep("", ranks);

  // ---- substrates 2+3: containerized, bare image vs wrapped image --------
  const auto scenario = workload::make_container_launch_scenario(config);
  auto host = core::WorldBuilder().nfs().build();
  const auto spec_normal = container_spec(scenario, /*wrapped=*/false);
  const auto spec_wrapped = container_spec(scenario, /*wrapped=*/true);
  std::vector<core::Session::LaunchResult> cont_normal, cont_wrapped;
  for (const int r : ranks) {
    cont_normal.push_back(host.launch_fleet(spec_normal, r));
    cont_wrapped.push_back(host.launch_fleet(spec_wrapped, r));
  }

  // Queueing-engine series (src/mds): the same streams replayed through
  // the discrete-event metadata-server simulator instead of the closed
  // form. Event count is ops/rank * ranks, so the full 900-module app is
  // simulated only at the smallest rank count; smoke mode covers the
  // whole sweep (the two engines agree to rounding here — the drift is
  // gated by bench_mds_storm).
  const std::size_t sim_points = smoke_mode() ? ranks.size() : 1;
  launch::FleetConfig fleet_queueing;
  fleet_queueing.cluster = host.config().cluster;
  std::vector<double> bare_sim, cont_sim;
  {
    auto probe = core::WorldBuilder().pynamic(config).nfs().build();
    const std::vector<int> sim_ranks(ranks.begin(),
                                     ranks.begin() + sim_points);
    for (const auto& outcome : launch::scaling_sweep_queueing(
             probe.fs(), probe.loader(), probe.default_exe(), probe.env(),
             sim_ranks, probe.config().cluster)) {
      bare_sim.push_back(outcome.launch.total_time_s);
    }
    for (const int r : sim_ranks) {
      cont_sim.push_back(launch::simulate_fleet_launch_sim(
                             host, spec_normal, "", r, fleet_queueing)
                             .launch.total_time_s);
    }
  }

  heading("Fig 6 containerized — Pynamic in three substrates");
  row("modules / needed entries",
      std::to_string(scenario.app.module_paths.size()));
  row("meta ops per rank (bare normal)",
      std::to_string(bare_normal[0].meta_ops_per_rank));
  row("meta ops per rank (bare wrapped)",
      std::to_string(bare_wrapped[0].meta_ops_per_rank));
  row("meta ops per rank (container normal)",
      std::to_string(cont_normal[0].meta_ops_per_rank));
  row("meta ops per rank (container wrapped)",
      std::to_string(cont_wrapped[0].meta_ops_per_rank));
  row("shared-image ops per rank (container normal)",
      std::to_string(cont_normal[0].shared_meta_ops_per_rank));
  row("per-rank overlay ops (container normal)",
      std::to_string(cont_normal[0].overlay_meta_ops_per_rank));

  std::printf(
      "\n  %6s %12s %12s %14s %14s %12s %12s\n", "ranks", "bare (s)",
      "wrapped (s)", "container (s)", "cont+wrap (s)", "bare sim(s)",
      "cont sim(s)");
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    const bool simmed = i < sim_points;
    std::printf("  %6d %12.1f %12.1f %14.1f %14.1f", ranks[i],
                bare_normal[i].total_time_s, bare_wrapped[i].total_time_s,
                cont_normal[i].total_time_s, cont_wrapped[i].total_time_s);
    if (simmed) {
      std::printf(" %12.1f %12.1f\n", bare_sim[i], cont_sim[i]);
    } else {
      std::printf(" %12s %12s\n", "--", "--");
    }
    depchaos::bench::capture(
        "ranks=" + std::to_string(ranks[i]) + " engine=analytic",
        fmt(bare_normal[i].total_time_s, 1) + "s bare / " +
            fmt(bare_wrapped[i].total_time_s, 1) + "s wrapped / " +
            fmt(cont_normal[i].total_time_s, 1) + "s container / " +
            fmt(cont_wrapped[i].total_time_s, 1) + "s container+wrap");
    if (simmed) {
      depchaos::bench::capture(
          "ranks=" + std::to_string(ranks[i]) + " engine=queueing",
          fmt(bare_sim[i], 1) + "s bare / " + fmt(cont_sim[i], 1) +
              "s container");
    }
  }

  // Spindle and pre-staging applied to the containerized UNWRAPPED app:
  // both absorb only the shared-image part of the storm.
  {
    launch::FleetConfig spindle;
    spindle.cluster = host.config().cluster;
    spindle.cluster.spindle_broadcast = true;
    launch::FleetConfig staged;
    staged.cluster = host.config().cluster;
    staged.prestaged_image = true;
    const auto s = host.launch_fleet(spec_normal, "", 2048, spindle);
    const auto p = host.launch_fleet(spec_normal, "", 2048, staged);
    row("container normal @2048 + spindle broadcast",
        fmt(s.total_time_s, 1) + " s");
    row("container normal @2048 + pre-staged image",
        fmt(p.total_time_s, 1) + " s");
  }

  heading("acceptance gates");
  const double bare_ratio =
      static_cast<double>(bare_normal[0].meta_ops_per_rank) /
      static_cast<double>(bare_wrapped[0].meta_ops_per_rank);
  const double cont_ratio =
      static_cast<double>(cont_normal[0].meta_ops_per_rank) /
      static_cast<double>(cont_wrapped[0].meta_ops_per_rank);
  const double drift = cont_ratio / bare_ratio - 1.0;
  const bool gate_ratio = drift < 0.05 && drift > -0.05;
  row("bare op reduction", fmt(bare_ratio, 1) + "x");
  row("containerized op reduction", fmt(cont_ratio, 1) + "x");
  row("containerized shrinkwrap preserves reduction (<5% drift)",
      gate_ratio ? "PASS (" + fmt(drift * 100, 2) + "%)" : "FAIL");

  // O(1) sandbox setup: a fresh per-rank sandbox owns no image bytes.
  auto job = host.sandbox(spec_normal);
  const std::uint64_t owned = job.fs().owned_bytes();
  const std::uint64_t image_bytes = scenario.image->disk_usage("/");
  const bool gate_fork = owned * 100 < image_bytes;
  row("sandbox owned bytes vs image",
      fmt(static_cast<double>(owned) / 1024.0, 1) + " KiB vs " +
          fmt(static_cast<double>(image_bytes) / (1 << 20), 1) + " MiB");
  row("per-rank setup is O(1) CoW fork (no image copy)",
      gate_fork ? "PASS" : "FAIL");

  row("bare sweep byte-identical to per-rank re-measurement",
      sweep_identical ? "PASS" : "FAIL");

  const bool gate_split =
      cont_normal[0].shared_meta_ops_per_rank +
              cont_normal[0].overlay_meta_ops_per_rank ==
          cont_normal[0].meta_ops_per_rank &&
      cont_normal[0].overlay_meta_ops_per_rank == 0 &&
      cont_wrapped[0].shared_meta_ops_per_rank +
              cont_wrapped[0].overlay_meta_ops_per_rank ==
          cont_wrapped[0].meta_ops_per_rank;
  row("shared/overlay split tiles the measured total",
      gate_split ? "PASS" : "FAIL");

  // Measurement economy: homogeneous containerized ranks collapse into
  // ONE equivalence class (one loader replay per sweep point), and a
  // mixed MPMD fleet is measured once per program class — never per rank.
  bool gate_classes = true;
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    gate_classes = gate_classes && cont_normal[i].ranks_measured == 1 &&
                   cont_normal[i].classes_measured == 1 &&
                   cont_wrapped[i].ranks_measured == 1 &&
                   cont_wrapped[i].classes_measured == 1;
  }
  {
    const int classes = 4;
    launch::FleetConfig mixed;
    mixed.cluster = host.config().cluster;
    mixed.rank_setup = [&scenario, classes](core::Session& s, int r) {
      workload::apply_mpmd_rank(s.fs(), s.env(), scenario.app, r, classes);
    };
    const auto m = host.launch_fleet(spec_normal, "", 64, mixed);
    gate_classes = gate_classes && m.load_succeeded &&
                   m.classes_measured == classes &&
                   m.ranks_measured == classes;
    row("mixed 4-class fleet @64 loader replays",
        std::to_string(m.ranks_measured));
  }
  row("measured loader replays == rank classes",
      gate_classes ? "PASS" : "FAIL");

  bool loads_ok = true;
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    loads_ok = loads_ok && bare_normal[i].load_succeeded &&
               bare_wrapped[i].load_succeeded &&
               cont_normal[i].load_succeeded &&
               cont_wrapped[i].load_succeeded &&
               cont_wrapped[i].total_time_s < cont_normal[i].total_time_s;
  }
  row("all substrates load; wrapped container beats normal",
      loads_ok ? "PASS" : "FAIL");

  return (gate_ratio && gate_fork && sweep_identical && gate_split &&
          gate_classes && loads_ok)
             ? 0
             : 1;
}

void BM_SandboxCreatePerRank(benchmark::State& state) {
  const auto scenario = workload::make_container_launch_scenario(app_config());
  auto host = core::WorldBuilder().nfs().build();
  const auto spec = container_spec(scenario, /*wrapped=*/false);
  for (auto _ : state) {
    auto job = host.sandbox(spec);
    benchmark::DoNotOptimize(job.fs().inode_count());
  }
}
BENCHMARK(BM_SandboxCreatePerRank)->Unit(benchmark::kMicrosecond);

void BM_ContainerColdLaunch(benchmark::State& state) {
  const auto scenario = workload::make_container_launch_scenario(app_config());
  auto host = core::WorldBuilder().nfs().build();
  const auto spec = container_spec(scenario, state.range(0) != 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        host.launch_fleet(spec, 512).meta_ops_per_rank);
  }
}
BENCHMARK(BM_ContainerColdLaunch)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

}  // namespace

int main(int argc, char** argv) {
  const int failures = print_report();
  const int bench_rc = depchaos::bench::run_benchmarks(argc, argv);
  return failures ? failures : bench_rc;
}
