// Fig 4: "Shared object reuse on a typical Debian installation with 3287
// binaries. Only 4% of shared object files are used by more than 5% of the
// binaries."

#include "bench_util.hpp"
#include "depchaos/workload/debian.hpp"

namespace {

using namespace depchaos;

void print_figure() {
  using depchaos::bench::fmt;
  using depchaos::bench::heading;
  using depchaos::bench::row;

  const auto system = workload::generate_installed_system({});
  const auto histogram = workload::reuse_histogram(system);

  heading("Fig 4 — shared-object reuse across 3287 binaries");
  row("binaries", std::to_string(system.binary_deps.size()));
  row("shared objects", std::to_string(system.num_shared_objects));
  row("max reuse (libc-like rank 0)", std::to_string(histogram.max()));
  row("median reuse", std::to_string(histogram.quantile(0.5)));
  row("mean reuse", fmt(histogram.mean(), 1));

  const auto threshold =
      static_cast<std::uint64_t>(0.05 * system.binary_deps.size());
  row("objects used by >5% of binaries",
      fmt(histogram.fraction_above(threshold) * 100, 1) +
          "%  (paper: ~4%)");

  std::printf("\n  reuse frequency (sorted, descending) — the Fig 4 curve:\n");
  const auto sorted = histogram.sorted_desc();
  for (const std::size_t index : {0ul, 9ul, 49ul, 99ul, 299ul, 699ul, 1399ul}) {
    if (index < sorted.size()) {
      std::printf("    shared object #%-5zu used by %5llu binaries\n", index,
                  static_cast<unsigned long long>(sorted[index]));
    }
  }
  std::printf("\n  histogram of reuse counts:\n%s",
              histogram.ascii_chart(12).c_str());
}

void BM_GenerateSystem(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        workload::generate_installed_system({}).binary_deps.size());
  }
}
BENCHMARK(BM_GenerateSystem)->Unit(benchmark::kMillisecond);

void BM_ReuseHistogram(benchmark::State& state) {
  const auto system = workload::generate_installed_system({});
  for (auto _ : state) {
    benchmark::DoNotOptimize(workload::reuse_histogram(system).size());
  }
}
BENCHMARK(BM_ReuseHistogram)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  return depchaos::bench::run_benchmarks(argc, argv);
}
